//! Network-wide broadcast over the clustered structure — the paper's
//! motivating application, simulated at message level.
//!
//! §1: "If all the hosts are organized into clusters, the information
//! transmission flooding could be confined within each cluster", with
//! clusterheads + gateways relaying between clusters. Two strategies
//! run on the discrete-event engine:
//!
//! * [`Strategy::BlindFlood`] — every node retransmits the first copy
//!   it hears (the reliability baseline; cost N transmissions).
//! * [`Strategy::Backbone`] — CDS nodes (clusterheads and gateways)
//!   retransmit unconditionally; clusterheads additionally start a
//!   hop-budgeted local flood (TTL `k`) so their cluster members are
//!   reached, and members relay those local floods while budget
//!   remains.
//!
//! A member may relay again if a strictly larger budget arrives later
//! (budget-monotone re-forwarding). This matters for correctness: a
//! member's only ≤k-hop path to its head can pass through *other*
//! clusters (affiliation is by distance, not by geodesic ownership),
//! so naive cluster-scoped or forward-once rules can strand nodes —
//! with budget-monotone TTL floods, a node at distance `i` from some
//! head eventually transmits with budget ≥ `k - i`, which reaches
//! every member by induction. Both strategies must deliver to every
//! node (asserted in tests); the interesting outputs are transmission
//! counts and latency.

use crate::engine::{EventQueue, Time};
use adhoc_cluster::cds::Cds;
use adhoc_cluster::clustering::Clustering;
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::graph::NodeId;

/// Broadcast strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Every node forwards once.
    BlindFlood,
    /// CDS nodes forward; non-CDS members relay hop-budgeted local
    /// floods started by clusterheads (and by a non-CDS source).
    Backbone,
}

/// Outcome of one simulated broadcast.
#[derive(Clone, Debug)]
pub struct BroadcastReport {
    /// Transmissions performed.
    pub transmissions: u64,
    /// Nodes that received the message.
    pub delivered: usize,
    /// Time at which the last node was reached.
    pub latency: Time,
    /// Whether every node got the message.
    pub complete: bool,
}

/// A copy in flight: `budget` is the remaining intra-cluster hop
/// allowance (`0` = backbone-only copy, not relayable by members).
#[derive(Clone, Copy, Debug)]
struct Packet {
    budget: u32,
}

/// Simulates one broadcast from `source`.
///
/// For [`Strategy::Backbone`], `clustering`/`cds` must describe a
/// valid connected k-hop CDS of `g` (e.g. from the AC-LMST pipeline);
/// for [`Strategy::BlindFlood`] they are ignored.
pub fn simulate<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
    cds: &Cds,
    source: NodeId,
    strategy: Strategy,
) -> BroadcastReport {
    let n = g.node_count();
    let k = clustering.k;
    let mut received = vec![false; n];
    // Largest budget each node has transmitted with; u32::MAX once a
    // node has done its unconditional (flood / backbone) transmission.
    let mut sent_budget = vec![0u32; n];
    let mut has_sent = vec![false; n];
    let mut latency = 0;
    let mut transmissions = 0u64;
    let mut queue: EventQueue<(NodeId, Packet)> = EventQueue::new();

    let in_cds = {
        let mut mask = vec![false; n];
        for v in cds.nodes() {
            mask[v.index()] = true;
        }
        mask
    };

    fn fire<G: Adjacency>(
        queue: &mut EventQueue<(NodeId, Packet)>,
        transmissions: &mut u64,
        g: &G,
        from: NodeId,
        pkt: Packet,
    ) {
        *transmissions += 1;
        for &to in g.adj(from) {
            queue.schedule(1, (to, pkt));
        }
    }

    received[source.index()] = true;
    has_sent[source.index()] = true;
    let src_budget = match strategy {
        Strategy::BlindFlood => 0,
        // A head (or any CDS source) seeds a fresh local flood; a
        // plain member needs its copy to travel up to k hops to reach
        // its head, so it also gets the full budget.
        Strategy::Backbone => k,
    };
    sent_budget[source.index()] = src_budget;
    fire(
        &mut queue,
        &mut transmissions,
        g,
        source,
        Packet { budget: src_budget },
    );

    while let Some((t, (at, pkt))) = queue.pop() {
        if !received[at.index()] {
            received[at.index()] = true;
            latency = t;
        }
        match strategy {
            Strategy::BlindFlood => {
                if !has_sent[at.index()] {
                    has_sent[at.index()] = true;
                    fire(&mut queue, &mut transmissions, g, at, Packet { budget: 0 });
                }
            }
            Strategy::Backbone => {
                if in_cds[at.index()] {
                    // Heads re-seed their cluster's local flood with
                    // the full budget; gateways relay unconditionally
                    // but also *carry* whatever budget arrived (a
                    // head-to-member path may run through a gateway,
                    // and dropping the budget there would strand the
                    // members behind it).
                    let budget = if clustering.is_head(at) {
                        k
                    } else {
                        pkt.budget.saturating_sub(1)
                    };
                    let beats = !has_sent[at.index()] || budget > sent_budget[at.index()];
                    if beats {
                        has_sent[at.index()] = true;
                        sent_budget[at.index()] = budget;
                        fire(&mut queue, &mut transmissions, g, at, Packet { budget });
                    }
                } else if pkt.budget > 1 {
                    // Member relay: only if this copy's remaining
                    // budget beats anything it sent before.
                    let fwd = pkt.budget - 1;
                    let beats = if has_sent[at.index()] {
                        fwd > sent_budget[at.index()]
                    } else {
                        true
                    };
                    if beats {
                        has_sent[at.index()] = true;
                        sent_budget[at.index()] = fwd;
                        fire(
                            &mut queue,
                            &mut transmissions,
                            g,
                            at,
                            Packet { budget: fwd },
                        );
                    }
                }
            }
        }
    }

    let delivered = received.iter().filter(|&&r| r).count();
    BroadcastReport {
        transmissions,
        delivered,
        latency,
        complete: delivered == n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_cluster::clustering::{cluster, MemberPolicy};
    use adhoc_cluster::pipeline::{run_on, Algorithm};
    use adhoc_cluster::priority::LowestId;
    use adhoc_graph::gen;

    fn setup(g: &adhoc_graph::Graph, k: u32) -> (Clustering, Cds) {
        let c = cluster(g, k, &LowestId, MemberPolicy::IdBased);
        let out = run_on(g, Algorithm::AcLmst, &c);
        out.cds.verify(g, k).unwrap();
        (c, out.cds)
    }

    #[test]
    fn blind_flood_costs_n_and_delivers() {
        let g = gen::grid(4, 5);
        let (c, cds) = setup(&g, 1);
        let r = simulate(&g, &c, &cds, NodeId(0), Strategy::BlindFlood);
        assert!(r.complete);
        assert_eq!(r.transmissions, 20);
        assert!(r.latency > 0);
    }

    #[test]
    fn backbone_delivers_everywhere() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        for k in 1..=3u32 {
            for _ in 0..3 {
                let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 8.0), &mut rng);
                let (c, cds) = setup(&net.graph, k);
                let bb = simulate(&net.graph, &c, &cds, NodeId(0), Strategy::Backbone);
                assert!(
                    bb.complete,
                    "backbone broadcast missed {} nodes at k={k}",
                    net.graph.len() - bb.delivered
                );
            }
        }
    }

    #[test]
    fn backbone_cheaper_than_flooding_when_sparse_cds() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        // Dense network, k=1: small CDS relative to N, so the backbone
        // should clearly win.
        let net = gen::geometric(&gen::GeometricConfig::new(150, 100.0, 10.0), &mut rng);
        let (c, cds) = setup(&net.graph, 1);
        let flood = simulate(&net.graph, &c, &cds, NodeId(0), Strategy::BlindFlood);
        let bb = simulate(&net.graph, &c, &cds, NodeId(0), Strategy::Backbone);
        assert!(flood.complete && bb.complete);
        assert!(
            bb.transmissions < flood.transmissions,
            "backbone {} >= flood {}",
            bb.transmissions,
            flood.transmissions
        );
    }

    #[test]
    fn backbone_from_member_source_works() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
        let (c, cds) = setup(&net.graph, 2);
        let member = net
            .graph
            .nodes()
            .find(|&v| !c.is_head(v) && cds.gateways.binary_search(&v).is_err())
            .expect("a plain member exists");
        let r = simulate(&net.graph, &c, &cds, member, Strategy::Backbone);
        assert!(r.complete, "member-sourced backbone broadcast incomplete");
    }

    #[test]
    fn latency_flood_is_eccentricity() {
        let g = gen::path(7);
        let (c, cds) = setup(&g, 1);
        let r = simulate(&g, &c, &cds, NodeId(0), Strategy::BlindFlood);
        assert_eq!(r.latency, 6);
        let r2 = simulate(&g, &c, &cds, NodeId(3), Strategy::BlindFlood);
        assert_eq!(r2.latency, 3);
    }

    #[test]
    fn single_node_broadcast() {
        let g = adhoc_graph::Graph::new(1);
        let (c, cds) = setup(&g, 1);
        let r = simulate(&g, &c, &cds, NodeId(0), Strategy::Backbone);
        assert!(r.complete);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.latency, 0);
    }
}
