//! Adversarial attack and recovery workload generators over the
//! [`ChurnEngine`].
//!
//! The maintenance benches exercise *graceful* churn: a handful of
//! random nodes drift and the engine's repair speed is measured. This
//! module supplies the hostile counterpart — workloads designed to
//! destroy connectivity as fast as possible — so the resilience bench
//! can measure *degradation* (how far reachability and stretch fall
//! while the attack runs) and *recovery* (how many reconciles until
//! the served [`RoutePlan`](adhoc_cluster::routing::RoutePlan) routes
//! 100% of feasible pairs again).
//!
//! Four attack shapes, in decreasing order of topological insight:
//!
//! * [`AttackKind::Heads`] — remove current clusterheads first (an
//!   attacker who learned the overlay; maximizes orphan repair work);
//! * [`AttackKind::HighestDegree`] — remove hubs by radio degree (an
//!   attacker who can only observe traffic density);
//! * [`AttackKind::Regional`] — correlated regional outages: whole
//!   spatial cells die together (jamming, power loss);
//! * [`AttackKind::Partition`] — mass partition: the median vertical
//!   strip of the field goes down, cutting it in two.
//!
//! Every victim list is **executed through the reconciliation state
//! machine** — each removal is a [`ChurnEngine::depart`] reconcile,
//! each return a [`ChurnEngine::arrive`] reconcile, driven as one
//! [`ChurnEngine::reconcile_batch`] so the maintained route plan is
//! republished once per burst instead of once per victim — so attacks
//! stress exactly the observe/repair/publish path production traffic
//! uses, and [`heal`] doubles as the flash-crowd arrival burst (a
//! stream of `arrive` reconciles against a degraded field).

use crate::churn::{BatchOp, ChurnEngine};
use crate::movement::StepReport;
use adhoc_graph::geom::Point;
use adhoc_graph::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The attack taxonomy (see the module docs for the threat model each
/// shape encodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackKind {
    /// Remove current clusterheads first, highest radio degree first.
    Heads,
    /// Remove alive nodes in decreasing radio-degree order.
    HighestDegree,
    /// Kill whole spatial cells (correlated regional outages).
    Regional,
    /// Kill the median vertical strip, partitioning the field.
    Partition,
}

impl AttackKind {
    /// Every attack shape, in bench-report order.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::Heads,
        AttackKind::HighestDegree,
        AttackKind::Regional,
        AttackKind::Partition,
    ];

    /// Stable lowercase name (CLI argument and JSON key).
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::Heads => "heads",
            AttackKind::HighestDegree => "degree",
            AttackKind::Regional => "regional",
            AttackKind::Partition => "partition",
        }
    }

    /// Parses a [`Self::name`] back (CLI entry point).
    pub fn parse(s: &str) -> Option<AttackKind> {
        AttackKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// Number of victims a `fraction` of the currently alive population
/// amounts to (at least one; the whole population at `1.0`).
///
/// # Panics
/// Panics unless `0.0 < fraction <= 1.0`.
fn quota(engine: &ChurnEngine, fraction: f64) -> usize {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "attack fraction must be in (0, 1], got {fraction}"
    );
    let alive = engine
        .graph()
        .nodes()
        .filter(|&v| !engine.is_departed(v))
        .count();
    ((alive as f64 * fraction).round() as usize).clamp(1, alive)
}

/// Alive nodes sorted by decreasing radio degree (ID ascending on
/// ties) — the deterministic hub-first order every targeted attack
/// builds on.
fn by_degree_desc(engine: &ChurnEngine) -> Vec<NodeId> {
    let g = engine.graph();
    let mut alive: Vec<NodeId> = g.nodes().filter(|&v| !engine.is_departed(v)).collect();
    alive.sort_by_key(|&v| (usize::MAX - g.neighbors(v).len(), v));
    alive
}

/// Targeted hub attack: the `fraction` highest-degree alive nodes,
/// highest degree first.
pub fn highest_degree_victims(engine: &ChurnEngine, fraction: f64) -> Vec<NodeId> {
    let n = quota(engine, fraction);
    let mut v = by_degree_desc(engine);
    v.truncate(n);
    v
}

/// Targeted overlay attack: current clusterheads first (highest degree
/// first), then — if the quota exceeds the head count — the remaining
/// highest-degree non-heads.
pub fn head_victims(engine: &ChurnEngine, fraction: f64) -> Vec<NodeId> {
    let n = quota(engine, fraction);
    let is_head = |v: NodeId| engine.clustering.heads.binary_search(&v).is_ok();
    let mut victims: Vec<NodeId> = by_degree_desc(engine)
        .iter()
        .copied()
        .filter(|&v| is_head(v))
        .collect();
    if victims.len() < n {
        victims.extend(
            by_degree_desc(engine)
                .iter()
                .copied()
                .filter(|&v| !is_head(v))
                .take(n - victims.len()),
        );
    }
    victims.truncate(n);
    victims
}

/// Correlated regional outages: spatial cells of side `cell` are
/// sampled uniformly (deterministically from `seed`) and **every**
/// alive node in a sampled cell dies, until at least a `fraction` of
/// the alive population is scheduled. Whole cells die together, so the
/// final count may overshoot the quota — that is the point of a
/// correlated failure.
///
/// # Panics
/// Panics unless `cell` is positive and finite and `positions` covers
/// the engine's node set.
pub fn regional_victims(
    engine: &ChurnEngine,
    positions: &[Point],
    cell: f64,
    fraction: f64,
    seed: u64,
) -> Vec<NodeId> {
    assert!(cell.is_finite() && cell > 0.0, "cell side must be positive");
    assert_eq!(
        positions.len(),
        engine.graph().len(),
        "positions must cover the node set"
    );
    let n = quota(engine, fraction);
    let mut cells: std::collections::BTreeMap<(i64, i64), Vec<NodeId>> = Default::default();
    for v in engine.graph().nodes() {
        if engine.is_departed(v) {
            continue;
        }
        let p = positions[v.index()];
        let key = ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        cells.entry(key).or_default().push(v);
    }
    let mut pool: Vec<Vec<NodeId>> = cells.into_values().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut victims = Vec::new();
    while victims.len() < n && !pool.is_empty() {
        let pick = rng.gen_range(0..pool.len());
        let mut doomed = pool.swap_remove(pick);
        doomed.sort_unstable();
        victims.extend(doomed);
    }
    victims
}

/// Mass partition: the alive nodes are sorted by `x` and the median
/// strip of a `fraction` of them goes down, carving the field into a
/// left and a right component (for strips wider than the radio range).
///
/// # Panics
/// Panics unless `positions` covers the engine's node set.
pub fn partition_victims(
    engine: &ChurnEngine,
    positions: &[Point],
    fraction: f64,
) -> Vec<NodeId> {
    assert_eq!(
        positions.len(),
        engine.graph().len(),
        "positions must cover the node set"
    );
    let n = quota(engine, fraction);
    let mut alive: Vec<NodeId> = engine
        .graph()
        .nodes()
        .filter(|&v| !engine.is_departed(v))
        .collect();
    alive.sort_by(|&a, &b| {
        positions[a.index()]
            .x
            .total_cmp(&positions[b.index()].x)
            .then(a.cmp(&b))
    });
    let start = (alive.len() - n) / 2;
    alive[start..start + n].to_vec()
}

/// Uniform random victims (deterministic from `seed`) — the graceful
/// baseline the targeted attacks are compared against, and the prep
/// phase of a flash-crowd experiment (depart a random crowd, then
/// [`heal`] it back in one burst).
pub fn random_victims(engine: &ChurnEngine, fraction: f64, seed: u64) -> Vec<NodeId> {
    let n = quota(engine, fraction);
    let mut alive: Vec<NodeId> = engine
        .graph()
        .nodes()
        .filter(|&v| !engine.is_departed(v))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut victims = Vec::with_capacity(n);
    for _ in 0..n {
        victims.push(alive.swap_remove(rng.gen_range(0..alive.len())));
    }
    victims
}

/// Selects a victim list for `kind`. `geometry` (positions + spatial
/// cell side, typically the radio range) is required by the
/// [`Regional`](AttackKind::Regional) and
/// [`Partition`](AttackKind::Partition) shapes and ignored otherwise.
///
/// # Panics
/// Panics if a geometric attack is requested without `geometry`.
pub fn select_victims(
    engine: &ChurnEngine,
    kind: AttackKind,
    fraction: f64,
    geometry: Option<(&[Point], f64)>,
    seed: u64,
) -> Vec<NodeId> {
    match kind {
        AttackKind::Heads => head_victims(engine, fraction),
        AttackKind::HighestDegree => highest_degree_victims(engine, fraction),
        AttackKind::Regional => {
            let (positions, cell) = geometry.expect("regional attack needs positions");
            regional_victims(engine, positions, cell, fraction, seed)
        }
        AttackKind::Partition => {
            let (positions, _) = geometry.expect("partition attack needs positions");
            partition_victims(engine, positions, fraction)
        }
    }
}

/// Executes an attack: departs each victim through a full
/// observe/repair/publish reconcile, returning the per-victim repair
/// reports in order. The whole victim list runs as one
/// [`ChurnEngine::reconcile_batch`], so the maintained route plan is
/// recompiled once at the end of the burst instead of once per victim
/// (reports and final state are bit-identical to one-at-a-time
/// departures — the batch driver pins that).
///
/// # Panics
/// Panics if a victim already departed (victim lists come from the
/// selectors above, which only pick alive nodes).
pub fn execute(engine: &mut ChurnEngine, victims: &[NodeId]) -> Vec<StepReport> {
    let ops: Vec<BatchOp> = victims.iter().map(|&v| BatchOp::Depart(v)).collect();
    engine.reconcile_batch(&ops)
}

/// Heals an attack (equivalently: runs a flash-crowd arrival burst) —
/// each returnee [`arrives`](ChurnEngine::arrive) with the radio links
/// it has in `reference` to nodes alive at that instant, so a crowd
/// returning together reconstructs its internal edges pair by pair as
/// the burst progresses (the batch driver filters each returnee's
/// neighbor list at execution time). Returns the per-arrival reports
/// in order; the route plan republishes once per burst.
///
/// # Panics
/// Panics if a returnee is already present.
pub fn heal(
    engine: &mut ChurnEngine,
    reference: &Graph,
    returnees: &[NodeId],
) -> Vec<StepReport> {
    let ops: Vec<BatchOp> = returnees
        .iter()
        .map(|&v| BatchOp::Arrive(v, reference.neighbors(v).to_vec()))
        .collect();
    engine.reconcile_batch(&ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants;
    use crate::movement::MovementConfig;
    use adhoc_cluster::pipeline::Algorithm;
    use adhoc_graph::delta::TopologyDelta;
    use adhoc_graph::gen::{self, GeometricConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64, n: usize) -> gen::GeometricNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::geometric(&GeometricConfig::new(n, 100.0, 8.0), &mut rng)
    }

    #[test]
    fn selectors_are_deterministic_and_respect_quota() {
        let net = net(3, 80);
        let e = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        let geometry = Some((net.positions.as_slice(), net.range));
        for kind in AttackKind::ALL {
            let a = select_victims(&e, kind, 0.2, geometry, 7);
            let b = select_victims(&e, kind, 0.2, geometry, 7);
            assert_eq!(a, b, "{} selection must be deterministic", kind.name());
            assert!(!a.is_empty());
            // Whole-cell outages may overshoot; everything else is exact.
            if kind != AttackKind::Regional {
                assert_eq!(a.len(), 16, "{}", kind.name());
            } else {
                assert!(a.len() >= 16, "regional must cover the quota");
            }
            let mut dedup = a.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), a.len(), "{}: no duplicate victims", kind.name());
        }
        assert_eq!(AttackKind::parse("degree"), Some(AttackKind::HighestDegree));
        assert_eq!(AttackKind::parse("bogus"), None);
    }

    #[test]
    fn head_attack_kills_heads_first() {
        let net = net(11, 60);
        let e = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        let quota = (e.clustering.heads.len()).min(3);
        let victims = head_victims(&e, quota as f64 / 60.0);
        for v in &victims {
            assert!(e.clustering.heads.contains(v), "{v:?} is not a head");
        }
    }

    #[test]
    fn degree_attack_is_sorted_by_degree() {
        let net = net(5, 50);
        let e = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        let victims = highest_degree_victims(&e, 0.3);
        let degrees: Vec<usize> = victims
            .iter()
            .map(|&v| e.graph().neighbors(v).len())
            .collect();
        assert!(degrees.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn partition_strip_is_contiguous_in_x() {
        let net = net(23, 70);
        let e = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        let victims = partition_victims(&e, &net.positions, 0.2);
        let xs: Vec<f64> = victims.iter().map(|v| net.positions[v.index()].x).collect();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // No survivor sits strictly inside the strip.
        for v in e.graph().nodes() {
            if victims.contains(&v) {
                continue;
            }
            let x = net.positions[v.index()].x;
            assert!(
                !(x > lo && x < hi),
                "alive node {v:?} inside the downed strip"
            );
        }
    }

    /// Attack then heal through the engine: every reconcile keeps the
    /// maintained ≡ rebuilt contract, and a full heal restores the
    /// exact original topology.
    #[test]
    fn attack_and_heal_round_trip() {
        let net = net(47, 60);
        for kind in AttackKind::ALL {
            let mut e = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
            e.enable_routing();
            let victims =
                select_victims(&e, kind, 0.15, Some((net.positions.as_slice(), net.range)), 9);
            let reports = execute(&mut e, &victims);
            assert_eq!(reports.len(), victims.len());
            assert!(
                invariants::check_all(&e).is_empty(),
                "{}: engine inconsistent mid-attack",
                kind.name()
            );
            let healed = heal(&mut e, &net.graph, &victims);
            assert_eq!(healed.len(), victims.len());
            assert!(
                TopologyDelta::between(e.graph(), &net.graph).is_empty(),
                "{}: heal must restore the original topology",
                kind.name()
            );
            assert!(
                invariants::check_all(&e).is_empty(),
                "{}: engine inconsistent after heal",
                kind.name()
            );
        }
    }
}
