//! Node priorities for clusterhead election.
//!
//! The paper's §2 lists several usable priorities: the classical lowest
//! node ID (Lin/Gerla), node degree (Gerla/Tsai), node speed, the sum
//! of distances to all neighbors, residual energy (§3.3's power-aware
//! rotation), and a random timer — all implemented here, plus the
//! k-hop-degree rule of the CONID family. All are expressed as a total
//! order on nodes via [`Priority::key`]: the node with the **smallest
//! key wins** the election contest, and every key embeds the node ID so
//! that the order is strict (no ties).

use adhoc_graph::bfs::Adjacency;
use adhoc_graph::graph::NodeId;
use rand::Rng;

/// A strict-total-order election key: lower wins. The `id` component
/// breaks ties between equal primary values, so two distinct nodes
/// never compare equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PriorityKey {
    /// Primary criterion (smaller is better).
    pub primary: u64,
    /// Node ID tie-break.
    pub id: NodeId,
}

impl PriorityKey {
    /// Creates a key.
    pub fn new(primary: u64, id: NodeId) -> Self {
        PriorityKey { primary, id }
    }
}

/// A clusterhead election priority: a total order on nodes.
pub trait Priority {
    /// The election key of `u`; the smallest key in a contest wins.
    fn key(&self, u: NodeId) -> PriorityKey;
}

/// The classical lowest-ID rule (Lin and Gerla): the node ID itself is
/// the priority. This is what the paper's simulations use.
#[derive(Clone, Copy, Debug, Default)]
pub struct LowestId;

impl Priority for LowestId {
    fn key(&self, u: NodeId) -> PriorityKey {
        PriorityKey::new(0, u)
    }
}

/// Highest-degree rule: nodes with more neighbors win; ties broken by
/// lower ID.
#[derive(Clone, Debug)]
pub struct HighestDegree {
    degrees: Vec<u32>,
}

impl HighestDegree {
    /// Captures the degrees of `g` at construction time.
    pub fn from_graph<G: Adjacency>(g: &G) -> Self {
        let degrees = (0..g.node_count() as u32)
            .map(|u| g.adj(NodeId(u)).len() as u32)
            .collect();
        HighestDegree { degrees }
    }
}

impl Priority for HighestDegree {
    fn key(&self, u: NodeId) -> PriorityKey {
        // Invert so that a higher degree gives a smaller key.
        PriorityKey::new(u64::from(u32::MAX - self.degrees[u.index()]), u)
    }
}

/// Residual-energy rule (§3.3): nodes with more remaining energy win,
/// prolonging average node lifetime when the clusterhead role rotates.
#[derive(Clone, Debug)]
pub struct ResidualEnergy {
    /// Energy levels scaled to integers (e.g. millijoules).
    levels: Vec<u64>,
}

impl ResidualEnergy {
    /// Creates the priority from per-node energy levels.
    pub fn new(levels: Vec<u64>) -> Self {
        ResidualEnergy { levels }
    }

    /// Current level of `u`.
    pub fn level(&self, u: NodeId) -> u64 {
        self.levels[u.index()]
    }

    /// Mutable access for energy accounting between rotation rounds.
    pub fn level_mut(&mut self, u: NodeId) -> &mut u64 {
        &mut self.levels[u.index()]
    }
}

impl Priority for ResidualEnergy {
    fn key(&self, u: NodeId) -> PriorityKey {
        PriorityKey::new(u64::MAX - self.levels[u.index()], u)
    }
}

/// Random-timer rule: each node draws a random value; the smallest
/// draw wins. Seeded at construction so elections are reproducible.
#[derive(Clone, Debug)]
pub struct RandomTimer {
    draws: Vec<u64>,
}

impl RandomTimer {
    /// Draws one value per node from `rng`.
    pub fn sample<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        RandomTimer {
            draws: (0..n).map(|_| rng.gen()).collect(),
        }
    }
}

impl Priority for RandomTimer {
    fn key(&self, u: NodeId) -> PriorityKey {
        PriorityKey::new(self.draws[u.index()], u)
    }
}

/// Lowest-speed rule (§2 "node speed"): slower nodes win, because a
/// slow clusterhead keeps its k-hop neighborhood valid for longer —
/// mobility-aware elections improve combinatorial stability.
///
/// Speeds are fixed-point scaled at construction (`1e-3` resolution) so
/// keys are integral and strictly ordered.
#[derive(Clone, Debug)]
pub struct LowestSpeed {
    scaled: Vec<u64>,
}

impl LowestSpeed {
    /// Captures per-node speeds (distance units per time unit).
    ///
    /// # Panics
    /// Panics on negative or non-finite speeds.
    pub fn new(speeds: &[f64]) -> Self {
        let scaled = speeds
            .iter()
            .map(|&s| {
                assert!(s.is_finite() && s >= 0.0, "speed must be finite and >= 0");
                (s * 1000.0).round() as u64
            })
            .collect();
        LowestSpeed { scaled }
    }
}

impl Priority for LowestSpeed {
    fn key(&self, u: NodeId) -> PriorityKey {
        PriorityKey::new(self.scaled[u.index()], u)
    }
}

/// Sum-of-distances rule (§2): the node whose summed distance to its
/// neighbors is smallest wins — a centrality heuristic that favors
/// nodes sitting in the middle of their neighborhood.
#[derive(Clone, Debug)]
pub struct SumOfDistances {
    scaled: Vec<u64>,
}

impl SumOfDistances {
    /// Computes each node's summed Euclidean distance to its graph
    /// neighbors from the deployment positions (fixed-point scaled,
    /// `1e-3` resolution).
    ///
    /// # Panics
    /// Panics if `positions.len()` differs from the node count.
    pub fn from_positions<G: Adjacency>(g: &G, positions: &[adhoc_graph::Point]) -> Self {
        assert_eq!(positions.len(), g.node_count(), "positions/nodes mismatch");
        let scaled = (0..g.node_count() as u32)
            .map(|u| {
                let sum: f64 = g
                    .adj(NodeId(u))
                    .iter()
                    .map(|v| positions[u as usize].distance(&positions[v.index()]))
                    .sum();
                (sum * 1000.0).round() as u64
            })
            .collect();
        SumOfDistances { scaled }
    }
}

impl Priority for SumOfDistances {
    fn key(&self, u: NodeId) -> PriorityKey {
        PriorityKey::new(self.scaled[u.index()], u)
    }
}

/// k-hop-connectivity rule (the CONID family, Nocetti et al. \[13\]):
/// the node with the most nodes inside its k-hop ball wins — a
/// k-hop generalization of the highest-degree rule, matched to the
/// election radius of k-hop clustering.
#[derive(Clone, Debug)]
pub struct KhopDegree {
    ball_sizes: Vec<u32>,
}

impl KhopDegree {
    /// Computes each node's k-hop ball size (excluding itself).
    pub fn from_graph<G: Adjacency>(g: &G, k: u32) -> Self {
        let mut scratch = adhoc_graph::bfs::BfsScratch::new(g.node_count());
        let ball_sizes = (0..g.node_count() as u32)
            .map(|u| {
                scratch.run(g, NodeId(u), k);
                scratch.visited().len() as u32 - 1
            })
            .collect();
        KhopDegree { ball_sizes }
    }

    /// The k-hop ball size of `u` (neighbors within k hops).
    pub fn ball_size(&self, u: NodeId) -> u32 {
        self.ball_sizes[u.index()]
    }
}

impl Priority for KhopDegree {
    fn key(&self, u: NodeId) -> PriorityKey {
        PriorityKey::new(u64::from(u32::MAX - self.ball_sizes[u.index()]), u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::gen;

    #[test]
    fn keys_order_lower_first() {
        let a = PriorityKey::new(1, NodeId(9));
        let b = PriorityKey::new(2, NodeId(0));
        assert!(a < b);
        let c = PriorityKey::new(1, NodeId(3));
        assert!(c < a); // same primary, lower ID wins
    }

    #[test]
    fn lowest_id_orders_by_id() {
        let p = LowestId;
        assert!(p.key(NodeId(2)) < p.key(NodeId(5)));
    }

    #[test]
    fn highest_degree_prefers_hubs() {
        let g = gen::star(5); // node 0 has degree 4, leaves degree 1
        let p = HighestDegree::from_graph(&g);
        assert!(p.key(NodeId(0)) < p.key(NodeId(1)));
        // Equal-degree leaves tie-break by ID.
        assert!(p.key(NodeId(1)) < p.key(NodeId(2)));
    }

    #[test]
    fn residual_energy_prefers_full_batteries() {
        let mut p = ResidualEnergy::new(vec![100, 50, 100]);
        assert!(p.key(NodeId(0)) < p.key(NodeId(1)));
        assert!(p.key(NodeId(0)) < p.key(NodeId(2))); // tie -> lower ID
        *p.level_mut(NodeId(1)) = 200;
        assert!(p.key(NodeId(1)) < p.key(NodeId(0)));
        assert_eq!(p.level(NodeId(1)), 200);
    }

    #[test]
    fn random_timer_is_reproducible() {
        use rand::{rngs::StdRng, SeedableRng};
        let a = RandomTimer::sample(10, &mut StdRng::seed_from_u64(5));
        let b = RandomTimer::sample(10, &mut StdRng::seed_from_u64(5));
        for i in 0..10u32 {
            assert_eq!(a.key(NodeId(i)), b.key(NodeId(i)));
        }
    }

    #[test]
    fn lowest_speed_prefers_slow_nodes() {
        let p = LowestSpeed::new(&[3.5, 0.5, 3.5]);
        assert!(p.key(NodeId(1)) < p.key(NodeId(0)));
        assert!(p.key(NodeId(0)) < p.key(NodeId(2))); // tie -> lower ID
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn lowest_speed_rejects_nan() {
        LowestSpeed::new(&[1.0, f64::NAN]);
    }

    #[test]
    fn sum_of_distances_prefers_central_nodes() {
        use adhoc_graph::Point;
        // Three nodes on a line: 1 sits between 0 and 2, all mutually
        // connected; its distance sum (1+1) beats the ends' (1+2).
        let g = gen::complete(3);
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let p = SumOfDistances::from_positions(&g, &positions);
        assert!(p.key(NodeId(1)) < p.key(NodeId(0)));
        assert!(p.key(NodeId(1)) < p.key(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn sum_of_distances_length_mismatch() {
        let g = gen::complete(3);
        SumOfDistances::from_positions(&g, &[adhoc_graph::Point::new(0.0, 0.0)]);
    }

    #[test]
    fn alternative_priorities_yield_valid_clusterings() {
        use crate::clustering::{cluster, MemberPolicy};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(55);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
        let speeds: Vec<f64> = (0..80).map(|_| rng.gen_range(0.0..5.0)).collect();
        let c = cluster(
            &net.graph,
            2,
            &LowestSpeed::new(&speeds),
            MemberPolicy::IdBased,
        );
        c.verify(&net.graph).unwrap();
        let p = SumOfDistances::from_positions(&net.graph, &net.positions);
        let c = cluster(&net.graph, 2, &p, MemberPolicy::IdBased);
        c.verify(&net.graph).unwrap();
    }

    #[test]
    fn khop_degree_reduces_to_degree_at_k1() {
        let g = gen::star(6);
        let p1 = KhopDegree::from_graph(&g, 1);
        let pd = HighestDegree::from_graph(&g);
        for i in 0..6u32 {
            assert_eq!(p1.key(NodeId(i)), pd.key(NodeId(i)));
        }
    }

    #[test]
    fn khop_degree_sees_past_immediate_neighbors() {
        // Path 0-1-2-3-4: at k=2, node 2 covers everyone (ball 4),
        // node 0 covers {1,2} (ball 2); node 2 must win.
        let g = gen::path(5);
        let p = KhopDegree::from_graph(&g, 2);
        assert_eq!(p.ball_size(NodeId(2)), 4);
        assert_eq!(p.ball_size(NodeId(0)), 2);
        assert!(p.key(NodeId(2)) < p.key(NodeId(0)));
        // k=1 ranks 0 and 2 equally by ball (both degree... 0 has 1
        // neighbor, 2 has 2), so the orders genuinely differ by k.
        let p1 = KhopDegree::from_graph(&g, 1);
        assert_eq!(p1.ball_size(NodeId(0)), 1);
        assert_eq!(p1.ball_size(NodeId(2)), 2);
    }

    #[test]
    fn khop_degree_clustering_elects_fewer_or_equal_heads_than_lowest_id() {
        // Not a theorem — but on geometric graphs, electing k-hop hubs
        // typically covers the area with fewer clusters. Assert only
        // validity plus the recorded comparison on a fixed seed so a
        // regression is visible.
        use crate::clustering::{cluster, MemberPolicy};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
        let p = KhopDegree::from_graph(&net.graph, 2);
        let c_hub = cluster(&net.graph, 2, &p, MemberPolicy::IdBased);
        let c_id = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        c_hub.verify(&net.graph).unwrap();
        assert!(c_hub.head_count() <= c_id.head_count() + 1);
    }

    #[test]
    fn keys_are_strictly_ordered_across_nodes() {
        // No two distinct nodes may compare equal under any priority.
        let g = gen::complete(6);
        let p = HighestDegree::from_graph(&g); // all degrees equal
        for i in 0..6u32 {
            for j in 0..6u32 {
                if i != j {
                    assert_ne!(p.key(NodeId(i)), p.key(NodeId(j)));
                }
            }
        }
    }
}
