//! Cluster-structure analysis: size balance and shape statistics.
//!
//! §3's size-based member policy exists to "balance the size of
//! clusters"; this module quantifies that balance (and general cluster
//! shape) so the policy ablation experiments have a measurable target.

use crate::clustering::Clustering;
use serde::{Deserialize, Serialize};

/// Descriptive statistics of the cluster-size distribution.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct BalanceReport {
    /// Number of clusters.
    pub clusters: usize,
    /// Smallest cluster (members + head).
    pub min: usize,
    /// Largest cluster.
    pub max: usize,
    /// Mean size.
    pub mean: f64,
    /// Sample standard deviation of sizes.
    pub std: f64,
    /// Jain's fairness index in `(0, 1]`: `(Σx)² / (n·Σx²)`; 1.0 means
    /// perfectly equal sizes.
    pub jain: f64,
    /// Mean member-to-head distance over all non-head nodes.
    pub mean_depth: f64,
}

/// Computes the balance report of a clustering.
pub fn balance(clustering: &Clustering) -> BalanceReport {
    let sizes = clustering.cluster_sizes();
    let n = sizes.len();
    if n == 0 {
        return BalanceReport::default();
    }
    let sum: usize = sizes.iter().sum();
    let mean = sum as f64 / n as f64;
    let var = if n > 1 {
        sizes
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / (n as f64 - 1.0)
    } else {
        0.0
    };
    let sq_sum: f64 = sizes.iter().map(|&s| (s as f64).powi(2)).sum();
    let jain = (sum as f64).powi(2) / (n as f64 * sq_sum);
    let members = clustering.head_of.len() - clustering.heads.len();
    let depth_sum: u32 = clustering.dist_to_head.iter().sum();
    let mean_depth = if members == 0 {
        0.0
    } else {
        f64::from(depth_sum) / members as f64
    };
    BalanceReport {
        clusters: n,
        min: sizes.iter().copied().min().unwrap_or(0),
        max: sizes.iter().copied().max().unwrap_or(0),
        mean,
        std: var.sqrt(),
        jain,
        mean_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;

    #[test]
    fn perfectly_balanced_path() {
        // Path 0..5, k=1: clusters {0,1}, {2,3}, {4,5}.
        let g = gen::path(6);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let r = balance(&c);
        assert_eq!(r.clusters, 3);
        assert_eq!(r.min, 2);
        assert_eq!(r.max, 2);
        assert!((r.jain - 1.0).abs() < 1e-12);
        assert_eq!(r.std, 0.0);
        assert!((r.mean_depth - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_star() {
        let g = gen::star(7);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let r = balance(&c);
        assert_eq!(r.clusters, 1);
        assert_eq!(r.max, 7);
        assert!((r.jain - 1.0).abs() < 1e-12); // single cluster is trivially "fair"
    }

    #[test]
    fn size_policy_is_at_least_as_fair_on_average() {
        // Over a batch of random networks, the size-based policy's
        // mean Jain index must not be worse than the ID-based one
        // (that is its entire purpose).
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let (mut fair_id, mut fair_size) = (0.0f64, 0.0f64);
        let reps = 10;
        for _ in 0..reps {
            let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 8.0), &mut rng);
            let a = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
            let b = cluster(&net.graph, 2, &LowestId, MemberPolicy::SizeBased);
            fair_id += balance(&a).jain;
            fair_size += balance(&b).jain;
        }
        assert!(
            fair_size >= fair_id - 1e-9,
            "size-based mean Jain {:.4} worse than id-based {:.4}",
            fair_size / reps as f64,
            fair_id / reps as f64
        );
    }

    #[test]
    fn mean_depth_grows_with_k() {
        let g = gen::path(30);
        let d1 = balance(&cluster(&g, 1, &LowestId, MemberPolicy::IdBased)).mean_depth;
        let d3 = balance(&cluster(&g, 3, &LowestId, MemberPolicy::IdBased)).mean_depth;
        assert!(d3 > d1);
    }
}
