//! The k-hop **core** algorithm — the contrasting clustering family.
//!
//! §1 distinguishes two 1-hop clustering methods: the *cluster*
//! algorithm (iterative; clusterheads can never be neighbors — the
//! paper's choice, implemented in [`crate::clustering`]) and the
//! *core* algorithm (single round; each node designates the best
//! priority node in its neighborhood, and designated cores may be
//! adjacent). This module implements the k-hop generalization of the
//! core algorithm (reference \[2\], Amis et al.'s max-min d-cluster family) so the
//! trade-off the paper alludes to can be measured: core runs in one
//! round and is cheaper, but *typically* elects more clusterheads (no
//! k-hop independence). No inequality holds universally — on star-like
//! topologies the iterative cluster algorithm can fragment leftover
//! nodes into more clusters — but on the paper's random geometric
//! workloads core consistently elects ~15–30% more heads (see the
//! `baselines` experiment binary).

use crate::clustering::Clustering;
use crate::priority::Priority;
use adhoc_graph::bfs::{Adjacency, BfsScratch, UNREACHED};
use adhoc_graph::graph::NodeId;

/// Runs the one-round k-hop core algorithm: every node designates the
/// best-priority node of its closed k-hop neighborhood as its
/// clusterhead; every designated node becomes a core (its own head).
///
/// The result reuses [`Clustering`] but satisfies a weaker contract
/// than the cluster algorithm's: heads still k-hop dominate, but they
/// are **not** k-hop independent — check with [`verify_core`], not
/// `Clustering::verify`.
///
/// # Panics
/// Panics if `k == 0` or the graph is empty.
pub fn core_cluster<G, P>(g: &G, k: u32, priority: &P) -> Clustering
where
    G: Adjacency,
    P: Priority,
{
    assert!(k >= 1, "k must be at least 1");
    let n = g.node_count();
    assert!(n > 0, "graph must be non-empty");
    let mut head_of = vec![NodeId(u32::MAX); n];
    let mut scratch = BfsScratch::new(n);

    // Designation pass.
    for u in (0..n as u32).map(NodeId) {
        scratch.run(g, u, k);
        let best = scratch
            .visited()
            .iter()
            .copied()
            .min_by_key(|&v| priority.key(v))
            .expect("closed neighborhood contains u");
        head_of[u.index()] = best;
    }
    // Every designated node is a core, overriding its own designation
    // (a core may itself have designated a better node; it still must
    // serve the nodes that chose it).
    let mut is_core = vec![false; n];
    for &h in &head_of {
        is_core[h.index()] = true;
    }
    let mut heads = Vec::new();
    for u in (0..n as u32).map(NodeId) {
        if is_core[u.index()] {
            head_of[u.index()] = u;
            heads.push(u);
        }
    }
    // Distances to the (possibly overridden) heads.
    let mut dist_to_head = vec![0u32; n];
    for &h in &heads {
        scratch.run(g, h, k);
        for &v in scratch.visited() {
            if head_of[v.index()] == h {
                dist_to_head[v.index()] = scratch.dist(v);
            }
        }
    }
    Clustering {
        k,
        heads,
        head_of,
        dist_to_head,
        rounds: 1,
    }
}

/// Verifies the core algorithm's contract: a partition into clusters
/// whose members are within `k` hops of their heads (k-hop
/// domination), heads mapping to themselves. Unlike the cluster
/// algorithm, heads may be arbitrarily close to each other.
pub fn verify_core<G: Adjacency>(g: &G, c: &Clustering) -> Result<(), String> {
    let n = g.node_count();
    if c.head_of.len() != n || c.dist_to_head.len() != n {
        return Err("clustering size mismatch".into());
    }
    let mut scratch = BfsScratch::new(n);
    for &h in &c.heads {
        if c.head_of[h.index()] != h {
            return Err(format!("head {h:?} not its own head"));
        }
    }
    for v in (0..n as u32).map(NodeId) {
        let h = c.head_of[v.index()];
        if h == NodeId(u32::MAX) {
            return Err(format!("{v:?} undesignated"));
        }
        scratch.run(g, h, c.k);
        let d = scratch.dist(v);
        if d == UNREACHED {
            return Err(format!("{v:?} beyond {} hops of {h:?}", c.k));
        }
        if d != c.dist_to_head[v.index()] {
            return Err(format!("{v:?}: stored distance wrong"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::pipeline::{run_on, Algorithm};
    use crate::priority::LowestId;
    use adhoc_graph::gen;

    #[test]
    fn core_on_path_designates_local_minima() {
        // Path 0..4, k=1: node 0 picks 0; 1 picks 0; 2 picks 1 -> but
        // 1 designated 0... designation is per-node: 2's ball {1,2,3}
        // -> best is 1. So 1 is a core even though 1 itself points to
        // 0 and gets overridden to itself.
        let g = gen::path(5);
        let c = core_cluster(&g, 1, &LowestId);
        assert!(c.heads.contains(&NodeId(0)));
        assert!(c.heads.contains(&NodeId(1))); // designated by 2
        verify_core(&g, &c).unwrap();
        assert_eq!(c.rounds, 1);
    }

    #[test]
    fn core_elects_at_least_as_many_heads_as_cluster() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 6.0), &mut rng);
            let core = core_cluster(&net.graph, k, &LowestId);
            let clus = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            verify_core(&net.graph, &core).unwrap();
            assert!(
                core.head_count() >= clus.head_count(),
                "core {} vs cluster {} heads at k={k}",
                core.head_count(),
                clus.head_count()
            );
        }
    }

    #[test]
    fn core_heads_can_be_adjacent() {
        // Path 0-1-2 with k=1: node 2 designates 1; node 0,1 designate
        // 0 -> cores {0,1} are neighbors, which the cluster algorithm
        // forbids.
        let g = gen::path(3);
        let c = core_cluster(&g, 1, &LowestId);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(1)]);
        // Cluster algorithm on the same graph: one head only.
        let cl = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        assert_eq!(cl.heads, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn gateway_pipeline_accepts_core_clusterings() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
        let core = core_cluster(&net.graph, 2, &LowestId);
        for alg in Algorithm::ALL {
            let out = run_on(&net.graph, alg, &core);
            out.cds
                .verify(&net.graph, 2)
                .unwrap_or_else(|e| panic!("{alg} on core clustering: {e}"));
        }
    }

    #[test]
    fn star_core_is_single_cluster() {
        let g = gen::star(6);
        let c = core_cluster(&g, 1, &LowestId);
        assert_eq!(c.heads, vec![NodeId(0)]);
        verify_core(&g, &c).unwrap();
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        core_cluster(&gen::path(2), 0, &LowestId);
    }
}
