//! Cluster-based hierarchical routing — the paper's §1 routing
//! motivation, made concrete.
//!
//! "Clustering has also been applied to routing protocols, helping to
//! achieve smaller routing tables and fewer route updates." This
//! module implements the standard two-level scheme on top of the
//! connected k-hop clustering:
//!
//! * **Intra-cluster**: members forward toward their clusterhead along
//!   canonical shortest paths (each node needs only its neighbors'
//!   distance labels — k-bounded state).
//! * **Inter-cluster**: clusterheads route over the adjacent cluster
//!   graph `G''` (virtual links realized by gateways); each head's
//!   table has one entry per clusterhead — `O(#heads)`, not `O(N)`.
//!
//! A route from `u` to `v` is the concatenation
//! `u ⇝ head(u) ⇝ … virtual links … ⇝ head(v) ⇝ v`, with the standard
//! shortcut that the walk stops early if it passes through `v`'s
//! cluster near `v`. The price is *stretch* (walk length over true
//! shortest distance); the payoff is table size — both measured by
//! the `routing` experiment binary.

use crate::adjacency::NeighborRule;
use crate::clustering::Clustering;
use crate::virtual_graph::VirtualGraph;
use adhoc_graph::bfs::{self, Adjacency, BfsScratch};
use adhoc_graph::graph::NodeId;
use std::collections::BTreeMap;

/// A hierarchical router over a clustering.
#[derive(Clone, Debug)]
pub struct ClusterRouter {
    clustering: Clustering,
    vg: VirtualGraph,
    /// Dense index of each head.
    head_index: BTreeMap<NodeId, usize>,
    /// `next[h][t]` = next head on the inter-cluster route from head
    /// index `h` toward head index `t` (self for `h == t`).
    next_head: Vec<Vec<usize>>,
}

/// Routing-table size statistics (the paper's "smaller routing
/// tables" claim, quantified).
#[derive(Clone, Copy, Debug, Default)]
pub struct TableStats {
    /// Entries a member keeps: one (its clusterhead) plus its 1-hop
    /// neighbor labels.
    pub member_entries: usize,
    /// Entries a clusterhead keeps: one per other clusterhead.
    pub head_entries: usize,
    /// Entries per node under flat shortest-path routing: `N - 1`.
    pub flat_entries: usize,
}

impl ClusterRouter {
    /// Builds the router: virtual graph under A-NCR plus all-pairs
    /// inter-head next-hop tables (Floyd–Warshall-free: one Dijkstra
    /// per head over `G''`, which has at most a few dozen vertices at
    /// the paper's scales).
    pub fn build<G: Adjacency>(g: &G, clustering: &Clustering) -> Self {
        let vg = VirtualGraph::build(g, clustering, NeighborRule::Adjacent);
        let heads = clustering.heads.clone();
        let head_index: BTreeMap<NodeId, usize> =
            heads.iter().enumerate().map(|(i, &h)| (h, i)).collect();
        let m = heads.len();
        // Adjacency of G'' with virtual-hop weights.
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); m];
        for l in vg.links() {
            let (a, b) = (head_index[&l.a] as u32, head_index[&l.b] as u32);
            let w = u64::from(l.hops());
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        // Per-head shortest-path tree over G'' -> next-hop tables.
        // G'' is tiny (a few dozen heads), so an O(m^2) Dijkstra scan
        // per source is fine and keeps determinism trivial.
        let mut next_head = Vec::with_capacity(m);
        for s in 0..m {
            let parents = dijkstra_parents(&adj, s);
            let mut row = vec![usize::MAX; m];
            for (t, slot) in row.iter_mut().enumerate() {
                if t == s {
                    *slot = s;
                    continue;
                }
                // Walk t's parent chain back toward s; the node whose
                // parent is s is s's first hop toward t.
                let mut cur = t;
                while parents[cur] != s {
                    assert_ne!(parents[cur], usize::MAX, "G'' is connected (Theorem 1)");
                    cur = parents[cur];
                }
                *slot = cur;
            }
            next_head.push(row);
        }
        ClusterRouter {
            clustering: clustering.clone(),
            vg,
            head_index,
            next_head,
        }
    }

    /// Routes `u ⇝ v`, returning the full node walk (inclusive).
    /// Consecutive duplicates are collapsed; the walk always follows
    /// existing edges of `g`.
    pub fn route<G: Adjacency>(&self, g: &G, u: NodeId, v: NodeId) -> Vec<NodeId> {
        if u == v {
            return vec![u];
        }
        let hu = self.clustering.head_of(u);
        let hv = self.clustering.head_of(v);
        let mut walk: Vec<NodeId> = Vec::new();

        // Ascend: u -> head(u).
        let up = canonical_path(g, u, hu, self.clustering.k);
        walk.extend(up);

        // Across: head(u) -> head(v) over virtual links.
        let mut cur = self.head_index[&hu];
        let target = self.head_index[&hv];
        while cur != target {
            let nxt = self.next_head[cur][target];
            let (a, b) = (self.clustering.heads[cur], self.clustering.heads[nxt]);
            let link = self.vg.link(a, b).expect("next-hop uses existing links");
            if link.path[0] == walk[walk.len() - 1] {
                walk.extend(link.path.iter().skip(1));
            } else {
                walk.extend(link.path.iter().rev().skip(1));
            }
            cur = nxt;
        }

        // Descend: head(v) -> v (reverse of v's ascent).
        let mut down = canonical_path(g, v, hv, self.clustering.k);
        down.reverse();
        walk.extend(down.into_iter().skip(1));

        // Shortcut trivially repeated nodes created by the joins.
        dedup_consecutive(&mut walk);
        walk
    }

    /// Table-size statistics for a network of `n` nodes and the mean
    /// node degree `avg_degree`.
    pub fn table_stats(&self, n: usize, avg_degree: f64) -> TableStats {
        TableStats {
            member_entries: 1 + avg_degree.round() as usize,
            head_entries: self.clustering.head_count().saturating_sub(1),
            flat_entries: n.saturating_sub(1),
        }
    }

    /// The underlying virtual graph (for inspection).
    pub fn virtual_graph(&self) -> &VirtualGraph {
        &self.vg
    }
}

/// Canonical shortest path from `x` to its head (bounded by `k`).
fn canonical_path<G: Adjacency>(g: &G, x: NodeId, head: NodeId, k: u32) -> Vec<NodeId> {
    let mut scratch = BfsScratch::new(g.node_count());
    scratch.run(g, head, k);
    bfs::lexico_path_from_labels(g, x, head, &scratch).expect("member within k hops of head")
}

fn dedup_consecutive(walk: &mut Vec<NodeId>) {
    walk.dedup();
}

/// Deterministic Dijkstra over a tiny weighted adjacency list,
/// returning parent pointers (`usize::MAX` = unreached, `s`'s parent
/// is itself).
fn dijkstra_parents(adj: &[Vec<(u32, u64)>], s: usize) -> Vec<usize> {
    let m = adj.len();
    let mut dist = vec![u64::MAX; m];
    let mut parent = vec![usize::MAX; m];
    let mut done = vec![false; m];
    dist[s] = 0;
    parent[s] = s;
    for _ in 0..m {
        let mut best = usize::MAX;
        for i in 0..m {
            if !done[i] && dist[i] != u64::MAX && (best == usize::MAX || dist[i] < dist[best]) {
                best = i;
            }
        }
        if best == usize::MAX {
            break;
        }
        done[best] = true;
        for &(to, w) in &adj[best] {
            let to = to as usize;
            let nd = dist[best] + w;
            if nd < dist[to] || (nd == dist[to] && best < parent[to]) {
                dist[to] = nd;
                parent[to] = best;
            }
        }
    }
    parent
}

/// Walk validity + length helpers for experiments.
pub fn walk_hops(walk: &[NodeId]) -> u32 {
    walk.len().saturating_sub(1) as u32
}

/// Whether `walk` follows existing edges (repeated nodes allowed —
/// hierarchical routes are walks, not simple paths).
pub fn is_valid_walk<G: Adjacency>(g: &G, walk: &[NodeId]) -> bool {
    !walk.is_empty()
        && walk
            .windows(2)
            .all(|w| g.adj(w[0]).binary_search(&w[1]).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;

    fn routed_ok<G: Adjacency>(g: &G, router: &ClusterRouter, u: NodeId, v: NodeId) -> u32 {
        let walk = router.route(g, u, v);
        assert!(
            is_valid_walk(g, &walk),
            "{u:?}->{v:?}: invalid walk {walk:?}"
        );
        assert_eq!(walk[0], u);
        assert_eq!(*walk.last().unwrap(), v);
        walk_hops(&walk)
    }

    #[test]
    fn routes_on_path_graph() {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&g, &c);
        let hops = routed_ok(&g, &router, NodeId(0), NodeId(8));
        assert_eq!(hops, 8, "path routing must be stretch-free");
        let hops = routed_ok(&g, &router, NodeId(3), NodeId(5));
        // 3 -> head 2 -> head 4 -> 5: walk 3-2-3-4-5 collapses to
        // 3-2-3-4-5 (4 hops) or better; allow small stretch.
        assert!((2..=4).contains(&hops));
    }

    #[test]
    fn same_cluster_routing() {
        let g = gen::star(6);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&g, &c);
        let hops = routed_ok(&g, &router, NodeId(2), NodeId(4));
        assert_eq!(hops, 2); // via the hub head
        assert_eq!(routed_ok(&g, &router, NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn all_pairs_reachable_random() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 8.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let router = ClusterRouter::build(&net.graph, &c);
            // Sample pairs.
            for (u, v) in [(0u32, 59u32), (5, 40), (17, 23), (59, 0), (30, 31)] {
                routed_ok(&net.graph, &router, NodeId(u), NodeId(v));
            }
        }
    }

    #[test]
    fn stretch_is_bounded_empirically() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(10);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&net.graph, &c);
        let d0 = bfs::distances(&net.graph, NodeId(0));
        let mut worst = 0.0f64;
        for v in 1..net.graph.len() as u32 {
            let hops = routed_ok(&net.graph, &router, NodeId(0), NodeId(v));
            let true_d = d0[v as usize];
            worst = worst.max(f64::from(hops) / f64::from(true_d));
        }
        assert!(worst >= 1.0);
        assert!(
            worst <= 6.0,
            "hierarchical stretch {worst} implausibly large"
        );
    }

    #[test]
    fn table_sizes_favor_hierarchy() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let net = gen::geometric(&gen::GeometricConfig::new(150, 100.0, 6.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&net.graph, &c);
        let stats = router.table_stats(net.graph.len(), net.graph.average_degree());
        assert!(stats.head_entries < stats.flat_entries / 2);
        assert!(stats.member_entries < stats.flat_entries / 4);
    }
}
