//! Iterative k-hop clusterhead election and member affiliation (§3).
//!
//! The paper generalizes the lowest-ID *cluster* algorithm to k-hop
//! neighborhoods: in each round, every node that has not yet joined a
//! cluster and whose priority beats every other not-yet-joined node in
//! its k-hop neighborhood declares itself clusterhead; undecided nodes
//! that hear at least one declaration within k hops join one cluster,
//! chosen by a [`MemberPolicy`]. Rounds repeat until every node has
//! joined. Because covered nodes drop out of later contests, the
//! resulting clusterheads are pairwise **more than k hops apart**
//! (k-hop independent) while still k-hop dominating the network.

use crate::priority::Priority;
use adhoc_graph::bfs::{Adjacency, BfsScratch};
use adhoc_graph::graph::NodeId;
use serde::{Deserialize, Serialize};

/// Sentinel for "no clusterhead assigned yet".
const NONE: NodeId = NodeId(u32::MAX);

/// How an undecided node that hears several clusterhead declarations in
/// the same round chooses which cluster to join (§3, enumeration 1–3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberPolicy {
    /// Join the declaring clusterhead with the smallest ID.
    #[default]
    IdBased,
    /// Join the nearest declaring clusterhead (fewest hops), smaller ID
    /// on equal distance.
    DistanceBased,
    /// Join the declaring clusterhead whose cluster is currently
    /// smallest, keeping cluster sizes balanced; tie-break by distance,
    /// then by ID. Joins are processed in node-ID order, so the
    /// "current size" a node sees is well defined and deterministic.
    SizeBased,
}

/// The result of k-hop clustering: a partition of the nodes into
/// clusters, each owned by one clusterhead.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Clustering {
    /// The clustering radius `k`.
    pub k: u32,
    /// Clusterheads, ascending by ID.
    pub heads: Vec<NodeId>,
    /// For every node, its clusterhead (heads map to themselves).
    pub head_of: Vec<NodeId>,
    /// For every node, the hop distance to its clusterhead (`0` for a
    /// head; guaranteed `<= k`).
    pub dist_to_head: Vec<u32>,
    /// Number of election rounds the iterative algorithm needed.
    pub rounds: u32,
}

impl Clustering {
    /// Number of clusters.
    pub fn head_count(&self) -> usize {
        self.heads.len()
    }

    /// Whether `u` is a clusterhead.
    pub fn is_head(&self, u: NodeId) -> bool {
        self.head_of[u.index()] == u
    }

    /// The clusterhead that owns `u`.
    pub fn head_of(&self, u: NodeId) -> NodeId {
        self.head_of[u.index()]
    }

    /// All members of `head`'s cluster, including the head itself,
    /// ascending by ID.
    pub fn cluster_of(&self, head: NodeId) -> Vec<NodeId> {
        assert!(self.is_head(head), "{head:?} is not a clusterhead");
        (0..self.head_of.len() as u32)
            .map(NodeId)
            .filter(|&v| self.head_of[v.index()] == head)
            .collect()
    }

    /// Cluster sizes keyed like [`Clustering::heads`].
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut idx = vec![usize::MAX; self.head_of.len()];
        for (i, &h) in self.heads.iter().enumerate() {
            idx[h.index()] = i;
        }
        let mut sizes = vec![0usize; self.heads.len()];
        for &h in &self.head_of {
            sizes[idx[h.index()]] += 1;
        }
        sizes
    }

    /// Checks the paper's structural invariants against the graph the
    /// clustering was computed on:
    ///
    /// * every node belongs to exactly one cluster, at most `k` hops
    ///   from its head (k-hop domination);
    /// * `dist_to_head` is the true hop distance;
    /// * clusterheads are pairwise more than `k` hops apart (k-hop
    ///   independence).
    pub fn verify<G: Adjacency>(&self, g: &G) -> Result<(), String> {
        let n = g.node_count();
        if self.head_of.len() != n || self.dist_to_head.len() != n {
            return Err("clustering size mismatch".into());
        }
        let mut scratch = BfsScratch::new(n);
        for &h in &self.heads {
            if self.head_of[h.index()] != h {
                return Err(format!("head {h:?} not its own head"));
            }
            scratch.run(g, h, self.k);
            for &other in &self.heads {
                if other != h && scratch.dist(other) != adhoc_graph::bfs::UNREACHED {
                    return Err(format!("heads {h:?} and {other:?} within {} hops", self.k));
                }
            }
        }
        self.check_members(g, &mut scratch)
    }

    /// Verifies only the k-hop *domination* half of [`Self::verify`]:
    /// every node belongs to a cluster whose head is within `k` hops,
    /// with `dist_to_head` accurate. Head independence is **not**
    /// checked — movement-sensitive maintenance policies deliberately
    /// let heads drift closer than `k+1` hops between re-elections, and
    /// this is the invariant they still guarantee.
    pub fn verify_coverage<G: Adjacency>(&self, g: &G) -> Result<(), String> {
        let n = g.node_count();
        if self.head_of.len() != n || self.dist_to_head.len() != n {
            return Err(format!(
                "clustering size mismatch: {} heads / {} dists for {n} nodes",
                self.head_of.len(),
                self.dist_to_head.len()
            ));
        }
        let mut scratch = BfsScratch::new(n);
        self.check_members(g, &mut scratch)
    }

    /// Shared member check of [`Self::verify`] / [`Self::verify_coverage`]:
    /// groups nodes by their recorded head and runs **one** bounded BFS
    /// per distinct head (not one per node — these verifiers run inside
    /// every test and harness `debug_assert`, so the old per-node sweep
    /// dominated test time). Grouping by the *recorded* `head_of`
    /// values rather than `self.heads` keeps the old behavior of also
    /// validating nodes whose recorded head was never elected.
    fn check_members<G: Adjacency>(&self, g: &G, scratch: &mut BfsScratch) -> Result<(), String> {
        let n = self.head_of.len();
        let mut by_head: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        let mut group_of: Vec<usize> = vec![usize::MAX; n];
        for v in (0..n as u32).map(NodeId) {
            let h = self.head_of[v.index()];
            if h == NONE {
                return Err(format!("{v:?} never joined a cluster"));
            }
            if h.index() >= n {
                return Err(format!("{v:?} points at out-of-range head {h:?}"));
            }
            let slot = match group_of[h.index()] {
                usize::MAX => {
                    group_of[h.index()] = by_head.len();
                    by_head.push((h, Vec::new()));
                    by_head.len() - 1
                }
                s => s,
            };
            by_head[slot].1.push(v);
        }
        for (h, members) in by_head {
            scratch.run(g, h, self.k);
            for v in members {
                let d = scratch.dist(v);
                if d == adhoc_graph::bfs::UNREACHED {
                    return Err(format!("{v:?} farther than {} hops from {h:?}", self.k));
                }
                if d != self.dist_to_head[v.index()] {
                    return Err(format!(
                        "{v:?}: recorded distance {} but BFS says {d}",
                        self.dist_to_head[v.index()]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Runs the iterative k-hop clustering of §3 with the given priority
/// and member policy.
///
/// This is the centralized emulation of the distributed rounds: it
/// computes exactly the structure the message-passing protocol in
/// `adhoc-sim` converges to (the simulator's tests assert equality).
///
/// # Panics
/// Panics if `k == 0` or the graph is empty.
pub fn cluster<G, P>(g: &G, k: u32, priority: &P, policy: MemberPolicy) -> Clustering
where
    G: Adjacency,
    P: Priority,
{
    assert!(k >= 1, "k must be at least 1");
    let n = g.node_count();
    assert!(n > 0, "graph must be non-empty");

    let mut head_of = vec![NONE; n];
    let mut dist_to_head = vec![0u32; n];
    let mut covered = vec![false; n];
    let mut remaining = n;
    let mut heads: Vec<NodeId> = Vec::new();
    let mut scratch = BfsScratch::new(n);
    let mut rounds = 0u32;

    // Per-round storage, reused.
    let mut new_heads: Vec<NodeId> = Vec::new();
    // For each undecided node: (head, hops) candidates heard this round.
    let mut heard: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); n];
    let mut cluster_size: Vec<usize> = vec![0; n]; // indexed by head ID

    while remaining > 0 {
        rounds += 1;
        debug_assert!(rounds <= n as u32 + 1, "clustering failed to converge");

        // Contest: an uncovered node declares iff its key beats every
        // uncovered node in its k-hop neighborhood.
        new_heads.clear();
        for u in (0..n as u32).map(NodeId) {
            if covered[u.index()] {
                continue;
            }
            let my_key = priority.key(u);
            scratch.run(g, u, k);
            let wins = scratch
                .visited()
                .iter()
                .all(|&v| v == u || covered[v.index()] || priority.key(v) > my_key);
            if wins {
                new_heads.push(u);
            }
        }
        assert!(
            !new_heads.is_empty(),
            "no progress: the uncovered node with the globally best \
             priority must always win its contest"
        );

        // Declarations flood k hops: record what each undecided node
        // hears.
        for &h in &new_heads {
            covered[h.index()] = true;
            head_of[h.index()] = h;
            dist_to_head[h.index()] = 0;
            cluster_size[h.index()] = 1;
            remaining -= 1;
            heads.push(h);
            scratch.run(g, h, k);
            for &v in scratch.visited() {
                if v != h && !covered[v.index()] {
                    heard[v.index()].push((h, scratch.dist(v)));
                }
            }
        }

        // Joins, in ID order (so SizeBased sees deterministic sizes).
        for v in (0..n as u32).map(NodeId) {
            if covered[v.index()] || heard[v.index()].is_empty() {
                heard[v.index()].clear();
                continue;
            }
            let choice = {
                let candidates = &heard[v.index()];
                match policy {
                    MemberPolicy::IdBased => candidates
                        .iter()
                        .copied()
                        .min_by_key(|&(h, _)| h)
                        .expect("nonempty"),
                    MemberPolicy::DistanceBased => candidates
                        .iter()
                        .copied()
                        .min_by_key(|&(h, d)| (d, h))
                        .expect("nonempty"),
                    MemberPolicy::SizeBased => candidates
                        .iter()
                        .copied()
                        .min_by_key(|&(h, d)| (cluster_size[h.index()], d, h))
                        .expect("nonempty"),
                }
            };
            let (h, d) = choice;
            covered[v.index()] = true;
            head_of[v.index()] = h;
            dist_to_head[v.index()] = d;
            cluster_size[h.index()] += 1;
            remaining -= 1;
            heard[v.index()].clear();
        }
    }

    heads.sort_unstable();
    Clustering {
        k,
        heads,
        head_of,
        dist_to_head,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::{HighestDegree, LowestId};
    use adhoc_graph::gen;
    use adhoc_graph::graph::Graph;

    #[test]
    fn single_node_is_its_own_head() {
        let g = Graph::new(1);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        assert_eq!(c.heads, vec![NodeId(0)]);
        assert_eq!(c.rounds, 1);
        c.verify(&g).unwrap();
    }

    #[test]
    fn path_k1_lowest_id() {
        // 0-1-2-3-4: node 0 wins round 1 and covers 1; node 2 wins
        // round 2 (contest among {2,3,4}) covering 3; node 4 wins
        // round 3.
        let g = gen::path(5);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(2), NodeId(4)]);
        assert_eq!(c.head_of(NodeId(1)), NodeId(0));
        assert_eq!(c.head_of(NodeId(3)), NodeId(2));
        assert_eq!(c.rounds, 3);
        c.verify(&g).unwrap();
    }

    #[test]
    fn path_k2_covers_more() {
        let g = gen::path(5);
        let c = cluster(&g, 2, &LowestId, MemberPolicy::IdBased);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(3)]);
        assert_eq!(c.head_of(NodeId(2)), NodeId(0));
        assert_eq!(c.dist_to_head[4], 1);
        c.verify(&g).unwrap();
    }

    #[test]
    fn star_single_cluster() {
        let g = gen::star(6);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        assert_eq!(c.heads, vec![NodeId(0)]);
        assert_eq!(c.cluster_of(NodeId(0)).len(), 6);
        c.verify(&g).unwrap();
    }

    #[test]
    fn larger_k_never_more_heads_on_path() {
        let g = gen::path(30);
        let mut last = usize::MAX;
        for k in 1..=4 {
            let c = cluster(&g, k, &LowestId, MemberPolicy::IdBased);
            c.verify(&g).unwrap();
            assert!(c.head_count() <= last);
            last = c.head_count();
        }
    }

    #[test]
    fn heads_are_khop_independent_random() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for k in 1..=3 {
            let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            c.verify(&net.graph).unwrap();
        }
    }

    #[test]
    fn distance_based_policy_prefers_nearest() {
        // 2 - 0 - 1 - 3 - 4 - 5? Construct: heads 0 and 5 both within
        // k=2 of node z with different distances.
        //   0-1-z, 5-z  (z=2): z hears 0 at 2 hops, 5 at 1 hop.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (3, 2)]);
        // Round 1 contest (k=2): node 0 sees {1,2}, wins. Node 3 sees
        // {2,1,0}? d(3,0)=3 >2, sees {2,1}: key(3) loses to 1? 1 is
        // uncovered, key 1 < 3, so 3 does not declare. Round 1 heads:
        // {0}. 1,2 join 0 (2 is 2 hops). 3 hears nothing (d(3,0)=3).
        // Round 2: 3 declares.
        let c = cluster(&g, 2, &LowestId, MemberPolicy::DistanceBased);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(3)]);
        assert_eq!(c.head_of(NodeId(2)), NodeId(0));

        // Now make 2 equidistant to both heads by shrinking to k=1 on
        // a different topology: 0-2, 3-2 with heads 0 and 3 declaring
        // in the same round; distance ties resolve to the lower ID.
        let g2 = Graph::from_edges(4, &[(0, 2), (3, 2), (0, 1)]);
        let c2 = cluster(&g2, 1, &LowestId, MemberPolicy::DistanceBased);
        assert_eq!(c2.heads, vec![NodeId(0), NodeId(3)]);
        assert_eq!(c2.head_of(NodeId(2)), NodeId(0));
        c2.verify(&g2).unwrap();
    }

    #[test]
    fn size_based_policy_balances() {
        // Heads 0 and 1 in one round is impossible within k hops of
        // each other, so build two distant heads with a shared border
        // node and check it goes to the smaller cluster.
        //   0 - a - z - b - 1   with extra members on 0's side.
        //   ids: 0, a=2, z=4, b=3, 1, extra 5,6 adjacent to 0.
        let g = Graph::from_edges(7, &[(0, 2), (2, 4), (4, 3), (3, 1), (0, 5), (0, 6)]);
        // k=1: round 1 contest: 0 wins (neighbors 2,5,6); 1 wins
        // (neighbor 3); z=4 contests {2?,3?}: 4's neighbors are 2 and
        // 3, both uncovered with smaller... key(2)<key(4): 4 loses.
        // After round 1: cluster(0) = {0,2,5,6}, cluster(1) = {1,3}.
        // Round 2: 4 contests; neighbors 2,3 covered; 4 wins and is
        // its own head.
        let c = cluster(&g, 1, &LowestId, MemberPolicy::SizeBased);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(1), NodeId(4)]);

        // For a genuine size decision put z adjacent to both heads'
        // members... simpler direct check: sizes stay balanced on a
        // complete bipartite-ish graph is covered by proptests; here
        // assert deterministic reproducibility instead.
        let c2 = cluster(&g, 1, &LowestId, MemberPolicy::SizeBased);
        assert_eq!(c.head_of, c2.head_of);
    }

    #[test]
    fn highest_degree_priority_elects_hub() {
        // Path 0-1-2-3-4 plus extra leaves on 2 making it the hub.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (2, 5), (2, 6)]);
        let p = HighestDegree::from_graph(&g);
        let c = cluster(&g, 2, &p, MemberPolicy::IdBased);
        assert!(c.is_head(NodeId(2)), "hub must win the k=2 contest");
        c.verify(&g).unwrap();
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let g = gen::grid(5, 6);
        let c = cluster(&g, 2, &LowestId, MemberPolicy::SizeBased);
        assert_eq!(c.cluster_sizes().iter().sum::<usize>(), 30);
        c.verify(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn k_zero_panics() {
        let g = gen::path(3);
        cluster(&g, 0, &LowestId, MemberPolicy::IdBased);
    }

    #[test]
    fn disconnected_graph_clusters_each_component() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(2), NodeId(4)]);
        c.verify(&g).unwrap();
    }

    #[test]
    fn rounds_counted() {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        // Heads 0,2,4,6,8 elected in successive rounds (each contest
        // is won only after the previous head's neighbors are covered).
        assert_eq!(c.heads.len(), 5);
        assert!(c.rounds >= 2);
    }
}
