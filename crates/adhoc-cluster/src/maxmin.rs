//! Max-Min d-cluster formation (Amis, Prakash, Vuong, Huynh — the
//! paper's reference \[2\]).
//!
//! The other k-hop clustering family the paper cites: `2d` flooding
//! rounds (`d` of floodmax, then `d` of floodmin) elect clusterheads
//! such that every node is within `d` hops of its head, using only
//! 1-hop exchanges per round. Unlike the paper's chosen lowest-ID
//! cluster algorithm it needs no iterative re-contests, but its heads
//! are not k-hop independent. Implemented as a baseline so the
//! reproduction can compare all three families (cluster / core /
//! max-min) on identical workloads.
//!
//! Election rules after the two phases, per the original paper (node
//! `x`, floodmax winners `W = v_1..v_d`, floodmin winners `w_1..w_d`):
//!
//! 1. if `x` received its own ID in any floodmin round, `x` is a
//!    clusterhead;
//! 2. else if some *node pair* exists (an ID appearing in both `W` and
//!    the floodmin list), `x` adopts the minimum such ID;
//! 3. else `x` adopts `v_d` (the overall floodmax winner).
//!
//! Note the original uses *max* IDs as winners; to stay consistent
//! with the rest of this crate (lowest ID = highest priority) we run
//! floodmax on priorities inverted, i.e. flood the *smallest* key
//! first and the largest second — the structure of the algorithm is
//! unchanged.

use crate::clustering::Clustering;
use adhoc_graph::bfs::{Adjacency, BfsScratch, UNREACHED};
use adhoc_graph::graph::NodeId;

/// Runs Max-Min d-cluster formation with `d = k` and lowest-ID
/// priority.
///
/// Returns a [`Clustering`] satisfying the core-style contract (k-hop
/// domination without head independence); check with
/// [`crate::core_algorithm::verify_core`]. `rounds` is set to `2k`
/// (the algorithm's fixed round count).
///
/// # Panics
/// Panics if `k == 0` or the graph is empty.
pub fn maxmin_cluster<G: Adjacency>(g: &G, k: u32) -> Clustering {
    assert!(k >= 1, "k must be at least 1");
    let n = g.node_count();
    assert!(n > 0, "graph must be non-empty");
    let d = k as usize;

    // Floodmin on IDs == "floodmax on priority" for lowest-ID wins.
    // Phase 1 spreads the best (smallest) ID d hops; phase 2 spreads
    // the worst-of-best back, letting smaller clusters reclaim nodes.
    let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let phase = |init: &[NodeId], take_min: bool| -> Vec<Vec<NodeId>> {
        let mut history = Vec::with_capacity(d);
        let mut cur: Vec<NodeId> = init.to_vec();
        for _ in 0..d {
            let mut next = cur.clone();
            for u in (0..n as u32).map(NodeId) {
                let mut best = cur[u.index()];
                for &v in g.adj(u) {
                    let cand = cur[v.index()];
                    if (take_min && cand < best) || (!take_min && cand > best) {
                        best = cand;
                    }
                }
                next[u.index()] = best;
            }
            history.push(next.clone());
            cur = next;
        }
        history
    };

    let win_hist = phase(&ids, true); // "floodmax" on priority
    let vd: Vec<NodeId> = win_hist.last().expect("d >= 1").clone();
    let min_hist = phase(&vd, false); // "floodmin": worst creeps back

    let mut head_of = vec![NodeId(u32::MAX); n];
    for x in (0..n as u32).map(NodeId) {
        let winners: Vec<NodeId> = win_hist.iter().map(|h| h[x.index()]).collect();
        let mins: Vec<NodeId> = min_hist.iter().map(|h| h[x.index()]).collect();
        // Rule 1: saw own ID come back in phase 2.
        if mins.contains(&x) {
            head_of[x.index()] = x;
            continue;
        }
        // Rule 2: minimum node pair.
        let pair = winners.iter().filter(|w| mins.contains(w)).min().copied();
        head_of[x.index()] = match pair {
            Some(h) => h,
            // Rule 3: overall phase-1 winner.
            None => vd[x.index()],
        };
    }

    // Consolidate: every adopted head serves (override like the core
    // algorithm; the original proves this is consistent, we enforce
    // it defensively for arbitrary graphs).
    let mut is_head = vec![false; n];
    for &h in &head_of {
        is_head[h.index()] = true;
    }
    let mut heads = Vec::new();
    for u in (0..n as u32).map(NodeId) {
        if is_head[u.index()] {
            head_of[u.index()] = u;
            heads.push(u);
        }
    }

    // Distances; max-min guarantees <= d hops on connected graphs. If
    // an adopted head is out of range (possible only on adversarial
    // non-geometric graphs), fall back to the nearest head.
    let mut dist_to_head = vec![0u32; n];
    let mut scratch = BfsScratch::new(n);
    let mut dist_cache: std::collections::BTreeMap<NodeId, Vec<u32>> = Default::default();
    for &h in &heads {
        scratch.run(g, h, k);
        let mut dv = vec![UNREACHED; n];
        for &v in scratch.visited() {
            dv[v.index()] = scratch.dist(v);
        }
        dist_cache.insert(h, dv);
    }
    for u in (0..n as u32).map(NodeId) {
        let h = head_of[u.index()];
        let d = dist_cache[&h][u.index()];
        if d != UNREACHED {
            dist_to_head[u.index()] = d;
        } else {
            // Fallback: nearest head within k (one must exist: u's
            // floodmax winner is within k hops and is a head).
            let (bd, bh) = heads
                .iter()
                .map(|&h2| (dist_cache[&h2][u.index()], h2))
                .min()
                .expect("some head");
            assert_ne!(bd, UNREACHED, "max-min domination violated");
            head_of[u.index()] = bh;
            dist_to_head[u.index()] = bd;
        }
    }

    Clustering {
        k,
        heads,
        head_of,
        dist_to_head,
        rounds: 2 * k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::core_algorithm::verify_core;
    use crate::pipeline::{run_on, Algorithm};
    use crate::priority::LowestId;
    use adhoc_graph::gen;

    #[test]
    fn path_maxmin_d1() {
        let g = gen::path(5);
        let c = maxmin_cluster(&g, 1);
        verify_core(&g, &c).unwrap();
        assert_eq!(c.rounds, 2);
        // Node 0's ID floods right one hop; minima creep back. All
        // nodes end within 1 hop of a head.
        for v in 0..5 {
            assert!(c.dist_to_head[v] <= 1);
        }
    }

    #[test]
    fn domination_holds_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 6.0), &mut rng);
            let c = maxmin_cluster(&net.graph, k);
            verify_core(&net.graph, &c).unwrap();
            assert_eq!(c.rounds, 2 * k);
        }
    }

    #[test]
    fn gateway_pipeline_accepts_maxmin() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(29);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
        let c = maxmin_cluster(&net.graph, 2);
        for alg in Algorithm::ALL {
            let out = run_on(&net.graph, alg, &c);
            out.cds
                .verify(&net.graph, 2)
                .unwrap_or_else(|e| panic!("{alg} on max-min: {e}"));
        }
    }

    #[test]
    fn complete_graph_single_head() {
        let g = gen::complete(6);
        let c = maxmin_cluster(&g, 1);
        assert_eq!(c.heads, vec![NodeId(0)]);
        verify_core(&g, &c).unwrap();
    }

    #[test]
    fn compares_sanely_with_lowest_id_cluster() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
        let mm = maxmin_cluster(&net.graph, 2);
        let cl = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        // Both dominate; both non-empty; both far smaller than n.
        assert!(mm.head_count() >= 1 && mm.head_count() < net.graph.len() / 2);
        assert!(cl.head_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        maxmin_cluster(&gen::path(3), 0);
    }
}
