//! Border-node gateway selection — the classical 1-hop baseline.
//!
//! §2: "One way is to select border nodes as gateways to connect the
//! clusterheads. A border node is a member with neighbors in other
//! clusters." This works for `k = 1` (adjacent clusterheads are at
//! most 3 hops apart, and the border pair plus the two heads form a
//! connected chain) but, as the paper notes, "when k is larger than 1,
//! using border nodes as gateways is not enough to make clusterheads
//! connected" — the border pair can be stranded up to `k` hops from
//! either head. This module implements the baseline, with the k = 1
//! restriction enforced, so the paper's motivating comparison is
//! runnable.

use crate::clustering::Clustering;
use crate::gateway::GatewaySelection;
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::graph::NodeId;
use std::collections::BTreeSet;

/// Marks every border node (member with a neighbor in a different
/// cluster) as a gateway.
///
/// Returns the realized head pairs as `links_used` (one entry per
/// adjacent cluster pair, like the other selectors).
///
/// # Panics
/// Panics if `clustering.k != 1`: beyond one hop the construction
/// does not guarantee connectivity (the reason the paper develops
/// A-NCR + LMSTGA instead).
pub fn border_gateways<G: Adjacency>(g: &G, clustering: &Clustering) -> GatewaySelection {
    assert_eq!(
        clustering.k, 1,
        "border-node gateways only guarantee connectivity for k = 1"
    );
    let n = g.node_count();
    let mut gateways = BTreeSet::new();
    let mut links = BTreeSet::new();
    for u in (0..n as u32).map(NodeId) {
        let hu = clustering.head_of(u);
        if hu.index() >= n {
            continue; // unaffiliated (departed/stranded sentinel): borders nothing
        }
        for &v in g.adj(u) {
            let hv = clustering.head_of(v);
            if hu == hv || hv.index() >= n {
                continue;
            }
            let pair = if hu < hv { (hu, hv) } else { (hv, hu) };
            links.insert(pair);
            if !clustering.is_head(u) {
                gateways.insert(u);
            }
            if !clustering.is_head(v) {
                gateways.insert(v);
            }
        }
    }
    GatewaySelection {
        gateways: gateways.into_iter().collect(),
        links_used: links.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::NeighborRule;
    use crate::cds::Cds;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::gateway;
    use crate::priority::LowestId;
    use crate::virtual_graph::VirtualGraph;
    use adhoc_graph::gen;

    #[test]
    fn border_nodes_on_path() {
        // Path 0..8, k=1, heads 0,2,4,6,8: every odd node borders two
        // clusters.
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let sel = border_gateways(&g, &c);
        assert_eq!(
            sel.gateways,
            vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7)]
        );
        assert_eq!(sel.links_used.len(), 4);
        let cds = Cds::assemble(&c, &sel);
        cds.verify(&g, 1).unwrap();
    }

    #[test]
    fn border_cds_is_connected_on_random_k1() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..3 {
            let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
            let sel = border_gateways(&net.graph, &c);
            let cds = Cds::assemble(&c, &sel);
            cds.verify(&net.graph, 1).unwrap();
        }
    }

    #[test]
    fn border_marks_more_gateways_than_lmst() {
        // The baseline's weakness the paper improves on: it marks
        // *every* border node, LMSTGA marks one path per kept link.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(33);
        let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 8.0), &mut rng);
        let c = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
        let border = border_gateways(&net.graph, &c);
        let vg = VirtualGraph::build(&net.graph, &c, NeighborRule::Adjacent);
        let lmst = gateway::lmstga(&vg, &c);
        assert!(
            border.gateway_count() >= lmst.gateway_count(),
            "border {} < lmst {}",
            border.gateway_count(),
            lmst.gateway_count()
        );
    }

    #[test]
    #[should_panic(expected = "k = 1")]
    fn k2_is_rejected() {
        let g = gen::path(9);
        let c = cluster(&g, 2, &LowestId, MemberPolicy::IdBased);
        border_gateways(&g, &c);
    }

    #[test]
    fn single_cluster_has_no_borders() {
        let g = gen::star(5);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let sel = border_gateways(&g, &c);
        assert!(sel.gateways.is_empty());
        assert!(sel.links_used.is_empty());
    }
}
