//! Exact minimum k-hop (connected) dominating sets by branch-and-bound.
//!
//! §4 of the paper notes that finding a minimum k-hop CDS is
//! NP-complete (via \[11\]) and therefore evaluates against the G-MST
//! heuristic as a *lower-bound stand-in*. This module provides the real
//! optimum for small instances so the quality of G-MST — and of the
//! paper's localized algorithms — can be measured as an approximation
//! ratio instead of only relative to each other.
//!
//! Two solvers are provided:
//!
//! * [`min_khop_ds`] — minimum k-hop *dominating set* (no connectivity
//!   requirement), a classic set-cover branch-and-bound. Its optimum is
//!   a lower bound on the CDS optimum.
//! * [`min_khop_cds`] — minimum k-hop *connected* dominating set. The
//!   search enumerates connected vertex subsets exactly once each
//!   (root-canonical include/exclude branching on the frontier) with
//!   coverage-based pruning.
//!
//! Both searches carry a step budget so callers can bound worst-case
//! time; the result records whether optimality was proven within the
//! budget. Intended for `n ≲ 40` (sparse) — large enough to compare
//! against every algorithm of the paper's evaluation at small scale.
//!
//! ```
//! use adhoc_cluster::exact::{min_khop_cds, verify_khop_cds, ExactConfig};
//! use adhoc_graph::gen;
//!
//! let g = gen::path(9);
//! let opt = min_khop_cds(&g, 2, &ExactConfig::default());
//! assert!(opt.optimal);
//! assert_eq!(opt.size(), 5); // a path needs the n - 2k interior nodes
//! verify_khop_cds(&g, &opt.set, 2).unwrap();
//! ```

use adhoc_graph::bfs::{Adjacency, BfsScratch};
use adhoc_graph::graph::NodeId;

/// Search limits for the exact solvers.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Maximum number of branch-and-bound expansions before the search
    /// gives up and returns the incumbent (marked non-optimal).
    pub max_steps: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        // Enough to prove optimality on every instance the bundled
        // ratio study generates (n ≤ 32, D ≤ 6) with a wide margin.
        ExactConfig {
            max_steps: 50_000_000,
        }
    }
}

/// Outcome of an exact search.
#[derive(Clone, Debug)]
pub struct ExactResult {
    /// The best set found, ascending by ID.
    pub set: Vec<NodeId>,
    /// Whether the search space was exhausted (the set is a proven
    /// optimum) rather than truncated by the step budget.
    pub optimal: bool,
    /// Branch-and-bound nodes expanded.
    pub explored: u64,
}

impl ExactResult {
    /// Size of the best set found.
    pub fn size(&self) -> usize {
        self.set.len()
    }
}

/// Fixed-capacity bitset over node IDs (words of 64).
#[derive(Clone, Debug, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self &= !other`.
    fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `|self & other|`.
    fn intersection_count(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }

}

/// The k-hop ball of every node as bitsets (`ball[v]` = nodes within
/// `k` hops of `v`, including `v` itself).
fn khop_balls<G: Adjacency>(g: &G, k: u32) -> Vec<BitSet> {
    let n = g.node_count();
    let mut scratch = BfsScratch::new(n);
    (0..n)
        .map(|v| {
            scratch.run(g, NodeId(v as u32), k);
            let mut ball = BitSet::new(n);
            for &u in scratch.visited() {
                ball.insert(u.index());
            }
            ball
        })
        .collect()
}

/// Greedy k-hop dominating set (max-coverage), used as the initial
/// incumbent for [`min_khop_ds`].
fn greedy_ds(n: usize, balls: &[BitSet]) -> Vec<usize> {
    let mut uncovered = BitSet::full(n);
    let mut picked = Vec::new();
    while !uncovered.is_empty() {
        let best = (0..n)
            .max_by_key(|&v| balls[v].intersection_count(&uncovered))
            .expect("nonempty universe");
        picked.push(best);
        uncovered.subtract(&balls[best]);
    }
    picked.sort_unstable();
    picked
}

/// Greedy *connected* k-hop dominating set: grow from the best-covering
/// seed, always adding the frontier node that covers the most uncovered
/// nodes (ties to lowest ID). Used as the initial incumbent for
/// [`min_khop_cds`]. Requires `g` connected; if the greedy stalls with
/// coverage incomplete (disconnected graph), returns all nodes.
fn greedy_cds<G: Adjacency>(g: &G, balls: &[BitSet]) -> Vec<usize> {
    let n = g.node_count();
    let mut uncovered = BitSet::full(n);
    let mut in_set = BitSet::new(n);
    let mut frontier = BitSet::new(n);
    let seed = (0..n)
        .max_by_key(|&v| balls[v].count())
        .expect("nonempty graph");
    let mut set = vec![seed];
    in_set.insert(seed);
    uncovered.subtract(&balls[seed]);
    for &w in g.adj(NodeId(seed as u32)) {
        frontier.insert(w.index());
    }
    while !uncovered.is_empty() {
        // Prefer coverage; a zero-coverage frontier node can still be
        // needed to walk toward a distant uncovered region, so pick the
        // one closest (by ball overlap with the uncovered set's own
        // balls) — approximated by max coverage with ID tie-break, and
        // any frontier node when all cover zero.
        let Some(best) = frontier
            .iter()
            .max_by_key(|&v| (balls[v].intersection_count(&uncovered), usize::MAX - v))
        else {
            // Disconnected graph: no connected dominating set exists;
            // fall back to "everything" so callers get a defined value.
            return (0..n).collect();
        };
        set.push(best);
        in_set.insert(best);
        frontier.remove(best);
        uncovered.subtract(&balls[best]);
        for &w in g.adj(NodeId(best as u32)) {
            if !in_set.contains(w.index()) {
                frontier.insert(w.index());
            }
        }
    }
    set.sort_unstable();
    set
}

/// Exact minimum k-hop dominating set (no connectivity constraint).
///
/// Branch-and-bound over the set-cover formulation: repeatedly pick the
/// uncovered node with the fewest candidate coverers and branch on which
/// ball covers it. The bound `|S| + ceil(|uncovered| / max_ball)`
/// prunes; the greedy solution seeds the incumbent.
pub fn min_khop_ds<G: Adjacency>(g: &G, k: u32, cfg: &ExactConfig) -> ExactResult {
    let n = g.node_count();
    assert!(n > 0, "empty graph has no dominating set");
    let balls = khop_balls(g, k);
    let max_ball = balls.iter().map(BitSet::count).max().unwrap_or(1).max(1);
    let mut best: Vec<usize> = greedy_ds(n, &balls);
    let mut explored = 0u64;
    let mut truncated = false;

    // Depth-first stack of (chosen set, uncovered).
    let mut chosen: Vec<usize> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        n: usize,
        balls: &[BitSet],
        max_ball: usize,
        uncovered: &BitSet,
        chosen: &mut Vec<usize>,
        best: &mut Vec<usize>,
        explored: &mut u64,
        truncated: &mut bool,
        max_steps: u64,
    ) {
        if *truncated {
            return;
        }
        *explored += 1;
        if *explored > max_steps {
            *truncated = true;
            return;
        }
        if uncovered.is_empty() {
            if chosen.len() < best.len() {
                *best = chosen.clone();
                best.sort_unstable();
            }
            return;
        }
        let lb = chosen.len() + uncovered.count().div_ceil(max_ball);
        if lb >= best.len() {
            return;
        }
        // Branch on the hardest uncovered node: fewest candidate balls.
        let target = uncovered
            .iter()
            .min_by_key(|&u| {
                (0..n)
                    .filter(|&v| balls[v].contains(u))
                    .count()
            })
            .expect("uncovered nonempty");
        let mut candidates: Vec<usize> = (0..n).filter(|&v| balls[v].contains(target)).collect();
        // Most-covering candidates first for early tight incumbents.
        candidates.sort_by_key(|&v| usize::MAX - balls[v].intersection_count(uncovered));
        for v in candidates {
            let mut next = uncovered.clone();
            next.subtract(&balls[v]);
            chosen.push(v);
            recurse(
                n, balls, max_ball, &next, chosen, best, explored, truncated, max_steps,
            );
            chosen.pop();
            if *truncated {
                return;
            }
        }
    }
    recurse(
        n,
        &balls,
        max_ball,
        &BitSet::full(n),
        &mut chosen,
        &mut best,
        &mut explored,
        &mut truncated,
        cfg.max_steps,
    );
    ExactResult {
        set: best.into_iter().map(|v| NodeId(v as u32)).collect(),
        optimal: !truncated,
        explored,
    }
}

/// State of the connected-subset enumeration in [`min_khop_cds`].
struct CdsSearch<'a, G: Adjacency> {
    g: &'a G,
    n: usize,
    balls: &'a [BitSet],
    max_ball: usize,
    best: Vec<usize>,
    explored: u64,
    truncated: bool,
    max_steps: u64,
}

impl<G: Adjacency> CdsSearch<'_, G> {
    /// Expands one search node: `set` is connected, `frontier` are the
    /// allowed extension vertices adjacent to `set`, `forbidden` are
    /// vertices excluded on this branch, `uncovered` the nodes not yet
    /// k-dominated.
    fn expand(
        &mut self,
        set: &mut Vec<usize>,
        frontier: &BitSet,
        forbidden: &BitSet,
        uncovered: &BitSet,
    ) {
        if self.truncated {
            return;
        }
        self.explored += 1;
        if self.explored > self.max_steps {
            self.truncated = true;
            return;
        }
        if uncovered.is_empty() {
            if set.len() < self.best.len() {
                self.best = set.clone();
                self.best.sort_unstable();
            }
            return;
        }
        // Coverage bound: every added node covers at most max_ball.
        let lb = set.len() + uncovered.count().div_ceil(self.max_ball);
        if lb >= self.best.len() {
            return;
        }
        // Feasibility: every uncovered node needs a non-forbidden
        // coverer (it must also be reachable through non-forbidden
        // territory, but this cheaper relaxation already prunes the
        // bulk of dead branches).
        for u in uncovered.iter() {
            let coverable = (0..self.n).any(|v| !forbidden.contains(v) && self.balls[v].contains(u));
            if !coverable {
                return;
            }
        }
        // Branch vertex: frontier node covering the most uncovered.
        let Some(v) = frontier
            .iter()
            .max_by_key(|&v| (self.balls[v].intersection_count(uncovered), usize::MAX - v))
        else {
            return; // frontier exhausted, coverage incomplete
        };
        // Include v.
        {
            let mut f2 = frontier.clone();
            f2.remove(v);
            for &w in self.g.adj(NodeId(v as u32)) {
                let wi = w.index();
                if !forbidden.contains(wi) && !set.contains(&wi) {
                    f2.insert(wi);
                }
            }
            let mut u2 = uncovered.clone();
            u2.subtract(&self.balls[v]);
            set.push(v);
            self.expand(set, &f2, forbidden, &u2);
            set.pop();
        }
        // Exclude v (forbid it in this subtree).
        {
            let mut f2 = frontier.clone();
            f2.remove(v);
            let mut forb2 = forbidden.clone();
            forb2.insert(v);
            self.expand(set, &f2, &forb2, uncovered);
        }
    }
}

/// Exact minimum k-hop connected dominating set.
///
/// Enumerates connected subsets once each: the subset's lowest-ID
/// vertex is fixed as the root (all smaller IDs are forbidden), and
/// extensions branch include/exclude on a frontier vertex. Pruned by
/// the coverage bound and by coverability of every uncovered node.
///
/// # Panics
/// Panics on an empty graph.
pub fn min_khop_cds<G: Adjacency>(g: &G, k: u32, cfg: &ExactConfig) -> ExactResult {
    let n = g.node_count();
    assert!(n > 0, "empty graph has no dominating set");
    let balls = khop_balls(g, k);
    let max_ball = balls.iter().map(BitSet::count).max().unwrap_or(1).max(1);
    let best = greedy_cds(g, &balls);
    let mut search = CdsSearch {
        g,
        n,
        balls: &balls,
        max_ball,
        best,
        explored: 0,
        truncated: false,
        max_steps: cfg.max_steps,
    };
    let full = BitSet::full(n);
    #[allow(clippy::needless_range_loop)]
    for root in 0..n {
        if search.truncated || search.best.len() == 1 {
            break;
        }
        // Canonical form: root is the minimum ID in the set.
        let mut forbidden = BitSet::new(n);
        for v in 0..root {
            forbidden.insert(v);
        }
        let mut frontier = BitSet::new(n);
        for &w in g.adj(NodeId(root as u32)) {
            if w.index() > root {
                frontier.insert(w.index());
            }
        }
        let mut uncovered = full.clone();
        uncovered.subtract(&balls[root]);
        let mut set = vec![root];
        search.expand(&mut set, &frontier, &forbidden, &uncovered);
    }
    ExactResult {
        set: search.best.into_iter().map(|v| NodeId(v as u32)).collect(),
        optimal: !search.truncated,
        explored: search.explored,
    }
}

/// Verifies that `set` is a k-hop CDS of `g` (connected + k-dominating).
/// Convenience for tests and the ratio study; returns `Ok(())` or a
/// description of the violation.
pub fn verify_khop_cds<G: Adjacency>(g: &G, set: &[NodeId], k: u32) -> Result<(), String> {
    use adhoc_graph::connectivity;
    if set.is_empty() {
        return Err("empty set".into());
    }
    let mut sorted: Vec<NodeId> = set.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != set.len() {
        return Err("duplicate nodes in set".into());
    }
    if !connectivity::is_subset_connected(g, &sorted) {
        return Err("set induces a disconnected subgraph".into());
    }
    let dist = connectivity::distance_to_set(g, &sorted);
    for (i, &d) in dist.iter().enumerate() {
        if d > k {
            return Err(format!("node {i} is {d} hops from the set (> {k})"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::gen;
    use adhoc_graph::Graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ids(vs: &[u32]) -> Vec<NodeId> {
        vs.iter().copied().map(NodeId).collect()
    }

    /// Brute force over all non-empty subsets (n ≤ ~16).
    fn brute_min_cds(g: &Graph, k: u32, connected: bool) -> usize {
        use adhoc_graph::connectivity;
        let n = g.len();
        let mut best = usize::MAX;
        for mask in 1u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let set: Vec<NodeId> = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| NodeId(i as u32))
                .collect();
            if connected && !connectivity::is_subset_connected(g, &set) {
                continue;
            }
            let dist = connectivity::distance_to_set(g, &set);
            if dist.iter().all(|&d| d <= k) {
                best = size;
            }
        }
        best
    }

    #[test]
    fn path_cds_is_interior_interval() {
        // On a path of n nodes, a connected k-dominating set is a
        // contiguous interval [a, b] covering both ends, so the optimum
        // size is max(1, n - 2k).
        for (n, k) in [(5usize, 1u32), (7, 1), (9, 2), (10, 2), (12, 3)] {
            let g = gen::path(n);
            let r = min_khop_cds(&g, k, &ExactConfig::default());
            assert!(r.optimal);
            assert_eq!(
                r.size(),
                n.saturating_sub(2 * k as usize).max(1),
                "path n={n} k={k}"
            );
            verify_khop_cds(&g, &r.set, k).unwrap();
        }
    }

    #[test]
    fn cycle_cds_matches_interval_bound() {
        // On a cycle, a connected subset is an arc; an arc of L nodes
        // covers L + 2k, so the optimum is max(1, n - 2k).
        for (n, k) in [(6usize, 1u32), (8, 1), (10, 2), (11, 2)] {
            let g = gen::cycle(n);
            let r = min_khop_cds(&g, k, &ExactConfig::default());
            assert!(r.optimal);
            assert_eq!(r.size(), n.saturating_sub(2 * k as usize).max(1));
            verify_khop_cds(&g, &r.set, k).unwrap();
        }
    }

    #[test]
    fn star_and_complete_need_one_node() {
        let star = gen::star(9);
        let r = min_khop_cds(&star, 1, &ExactConfig::default());
        assert_eq!(r.set, ids(&[0]));
        let complete = gen::complete(6);
        let r = min_khop_cds(&complete, 1, &ExactConfig::default());
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn ds_lower_bounds_cds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let net = gen::geometric(&gen::GeometricConfig::new(20, 100.0, 5.0), &mut rng);
            for k in 1..=2u32 {
                let ds = min_khop_ds(&net.graph, k, &ExactConfig::default());
                let cds = min_khop_cds(&net.graph, k, &ExactConfig::default());
                assert!(ds.optimal && cds.optimal);
                assert!(ds.size() <= cds.size());
                verify_khop_cds(&net.graph, &cds.set, k).unwrap();
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_small_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            // Random connected graph on n ≤ 9 nodes: random tree plus
            // extra edges.
            let n = rng.gen_range(3..=9usize);
            let mut g = Graph::new(n);
            for v in 1..n {
                let p = rng.gen_range(0..v);
                g.add_edge(NodeId(v as u32), NodeId(p as u32));
            }
            for _ in 0..n / 2 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b && !g.has_edge(NodeId(a as u32), NodeId(b as u32)) {
                    g.add_edge(NodeId(a as u32), NodeId(b as u32));
                }
            }
            for k in 1..=2u32 {
                let cds = min_khop_cds(&g, k, &ExactConfig::default());
                assert!(cds.optimal);
                assert_eq!(
                    cds.size(),
                    brute_min_cds(&g, k, true),
                    "trial {trial} k={k} cds"
                );
                let ds = min_khop_ds(&g, k, &ExactConfig::default());
                assert!(ds.optimal);
                assert_eq!(
                    ds.size(),
                    brute_min_cds(&g, k, false),
                    "trial {trial} k={k} ds"
                );
            }
        }
    }

    #[test]
    fn heuristics_never_beat_the_optimum() {
        use crate::pipeline::{self, Algorithm, PipelineConfig};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let net = gen::geometric(&gen::GeometricConfig::new(24, 100.0, 5.0), &mut rng);
            for k in 1..=2u32 {
                let opt = min_khop_cds(&net.graph, k, &ExactConfig::default());
                assert!(opt.optimal);
                for alg in Algorithm::ALL {
                    let out = pipeline::run(&net.graph, alg, &PipelineConfig::new(k));
                    assert!(
                        out.cds.size() >= opt.size(),
                        "{alg} produced {} < optimum {}",
                        out.cds.size(),
                        opt.size()
                    );
                }
            }
        }
    }

    #[test]
    fn budget_truncation_reports_nonoptimal() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = gen::geometric(&gen::GeometricConfig::new(30, 100.0, 6.0), &mut rng);
        let r = min_khop_cds(&net.graph, 1, &ExactConfig { max_steps: 10 });
        assert!(!r.optimal);
        // Even truncated, the incumbent (greedy seed) must be valid.
        verify_khop_cds(&net.graph, &r.set, 1).unwrap();
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::new(1);
        let r = min_khop_cds(&g, 1, &ExactConfig::default());
        assert_eq!(r.set, ids(&[0]));
        assert!(r.optimal);
        let r = min_khop_ds(&g, 3, &ExactConfig::default());
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn verify_rejects_bad_sets() {
        let g = gen::path(5);
        assert!(verify_khop_cds(&g, &[], 1).is_err());
        assert!(verify_khop_cds(&g, &ids(&[0, 0]), 1).is_err());
        assert!(verify_khop_cds(&g, &ids(&[0, 4]), 2).is_err()); // disconnected
        assert!(verify_khop_cds(&g, &ids(&[0]), 1).is_err()); // undominated
        assert!(verify_khop_cds(&g, &ids(&[1, 2, 3]), 1).is_ok());
    }

    #[test]
    fn grid_cds_known_small_case() {
        // 3×3 grid, k=1: the center row {3,4,5} dominates and is
        // connected; nothing smaller works (brute force cross-check).
        let g = gen::grid(3, 3);
        let r = min_khop_cds(&g, 1, &ExactConfig::default());
        assert!(r.optimal);
        assert_eq!(r.size(), brute_min_cds(&g, 1, true));
        assert_eq!(r.size(), 3);
    }

    #[test]
    fn larger_k_never_increases_optimum() {
        let mut rng = StdRng::seed_from_u64(19);
        let net = gen::geometric(&gen::GeometricConfig::new(18, 100.0, 5.0), &mut rng);
        let mut prev = usize::MAX;
        for k in 1..=4u32 {
            let r = min_khop_cds(&net.graph, k, &ExactConfig::default());
            assert!(r.optimal);
            assert!(r.size() <= prev, "k={k}: {} > {prev}", r.size());
            prev = r.size();
        }
    }
}
