//! Neighbor clusterhead selection (§3.1): the naive `NC` rule and the
//! paper's A-NCR (`AC`) rule.
//!
//! * **NC** — each clusterhead selects *all* clusterheads within
//!   `2k+1` hops. This is the traditional rule; connecting to all of
//!   them trivially preserves global connectivity but marks many
//!   gateways.
//! * **AC (A-NCR)** — each clusterhead selects only its *adjacent*
//!   clusterheads: heads of clusters that touch its own cluster along
//!   an edge of `G` (Definition 2). Theorem 1 shows the adjacent
//!   cluster graph `G''` is connected, so connecting only to adjacent
//!   clusterheads suffices; Theorem 1's proof also implies every pair
//!   of adjacent clusterheads is between `k+1` and `2k+1` hops apart,
//!   keeping the rule localized.

use crate::clustering::Clustering;
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::graph::NodeId;
use adhoc_graph::labels::{HeadLabels, LabelStore};
use std::collections::BTreeMap;

/// Which neighbor clusterhead selection rule to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NeighborRule {
    /// All clusterheads within `2k+1` hops ("NC" prefix in the paper's
    /// algorithm names).
    All2kPlus1,
    /// Only adjacent clusterheads, per A-NCR ("AC" prefix).
    Adjacent,
}

/// The per-clusterhead neighbor sets produced by a [`NeighborRule`].
///
/// The relation is symmetric for both rules: `v ∈ set(u)` iff
/// `u ∈ set(v)` (A-NCR "all the remaining connections between
/// clusterheads are symmetric", and hop distance is symmetric for NC).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NeighborSets {
    sets: BTreeMap<NodeId, Vec<NodeId>>,
}

impl NeighborSets {
    /// Builds the symmetric relation holding exactly `pairs` over the
    /// given head set (heads with no selected partner get an empty
    /// row). This is how a *selection*'s realized links — e.g. one
    /// algorithm's `links_used` — are turned back into a relation, so
    /// a backbone-restricted virtual graph can be built for routing.
    ///
    /// # Panics
    /// Panics if a pair endpoint is not in `heads`.
    pub fn from_pairs(
        heads: &[NodeId],
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> NeighborSets {
        let mut sets: BTreeMap<NodeId, Vec<NodeId>> =
            heads.iter().map(|&h| (h, Vec::new())).collect();
        for (a, b) in pairs {
            for (x, y) in [(a, b), (b, a)] {
                sets.get_mut(&x)
                    .unwrap_or_else(|| panic!("{x:?} is not a head"))
                    .push(y);
            }
        }
        for row in sets.values_mut() {
            row.sort_unstable();
            row.dedup();
        }
        NeighborSets { sets }
    }

    /// The sorted neighbor clusterheads of `head`.
    ///
    /// # Panics
    /// Panics if `head` is not a clusterhead of the clustering the sets
    /// were built from.
    pub fn of(&self, head: NodeId) -> &[NodeId] {
        self.sets
            .get(&head)
            .unwrap_or_else(|| panic!("{head:?} is not a clusterhead"))
    }

    /// Iterates `(head, neighbor heads)` in ascending head order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[NodeId])> {
        self.sets.iter().map(|(&h, v)| (h, v.as_slice()))
    }

    /// All unordered selected pairs `(u, v)` with `u < v`.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (&u, vs) in &self.sets {
            for &v in vs {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Total number of unordered pairs.
    pub fn pair_count(&self) -> usize {
        self.sets.values().map(Vec::len).sum::<usize>() / 2
    }

    /// Verifies symmetry of the relation (used by tests).
    pub fn check_symmetric(&self) -> Result<(), String> {
        for (&u, vs) in &self.sets {
            for &v in vs {
                let back = self
                    .sets
                    .get(&v)
                    .ok_or_else(|| format!("{v:?} missing from sets"))?;
                if back.binary_search(&u).is_err() {
                    return Err(format!("{u:?} -> {v:?} not mirrored"));
                }
            }
        }
        Ok(())
    }
}

/// Computes the neighbor clusterhead sets of every head under `rule`.
pub fn neighbor_clusterheads<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
    rule: NeighborRule,
) -> NeighborSets {
    match rule {
        NeighborRule::All2kPlus1 => {
            let bound = 2 * clustering.k + 1;
            let labels = LabelStore::Dense(HeadLabels::build(g, &clustering.heads, bound));
            nc_from_labels(clustering, &labels)
        }
        NeighborRule::Adjacent => adjacent_heads(g, clustering),
    }
}

/// NC rule read off precomputed head labels: head `o` is selected by
/// `h` iff `dist(h, o) <= 2k+1`. No graph traversal happens here — the
/// evaluation engine shares one [`LabelStore`] build across the NC
/// relation, both virtual graphs, and G-MST. Each row comes from
/// [`LabelStore::heads_within`], which the dense layout answers by
/// probing every head (`O(h)` per row) and the sparse layout by
/// scanning the head's ball (`O(ball)` per row — asymptotically
/// cheaper at scale).
///
/// # Panics
/// Panics if `labels` was built from a different head set or with a
/// bound below `2k+1`.
pub fn nc_from_labels(clustering: &Clustering, labels: &LabelStore) -> NeighborSets {
    let bound = 2 * clustering.k + 1;
    assert!(
        labels.bound() >= bound,
        "labels bound {} below 2k+1 = {bound}",
        labels.bound()
    );
    assert_eq!(labels.heads(), &clustering.heads[..], "head set mismatch");
    let mut sets: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for (slot, &h) in clustering.heads.iter().enumerate() {
        // `heads` is ascending, so both layouts yield sorted rows.
        sets.insert(h, labels.heads_within(slot, bound));
    }
    NeighborSets { sets }
}

/// NC relation *patched* after an incremental label update: the rows of
/// clean heads are copied from `prev` (a head-pair distance can only
/// change if **both** endpoints' balls were touched, so a clean head's
/// selection is provably unchanged), and only the `dirty` slots are
/// re-derived from the refreshed labels. Produces exactly what
/// [`nc_from_labels`] would on the new labels (pinned by tests), in
/// `O(h + dirty · h)` instead of `O(h²)` label reads.
///
/// # Panics
/// As [`nc_from_labels`], plus if `prev` was built from a different
/// head set.
pub fn nc_from_labels_patched(
    clustering: &Clustering,
    labels: &LabelStore,
    prev: &NeighborSets,
    dirty: &[usize],
) -> NeighborSets {
    let bound = 2 * clustering.k + 1;
    assert!(
        labels.bound() >= bound,
        "labels bound {} below 2k+1 = {bound}",
        labels.bound()
    );
    assert_eq!(labels.heads(), &clustering.heads[..], "head set mismatch");
    assert_eq!(
        prev.sets.len(),
        clustering.heads.len(),
        "previous relation covers a different head set"
    );
    let mut sets = prev.sets.clone();
    // Dirty heads recompute their own row; additionally a dirty head
    // may have entered/left a *clean* head's row — but then the pair
    // distance changed, which dirties both ends, so clean rows really
    // are stable and only dirty ones need touching.
    for &slot in dirty {
        let h = clustering.heads[slot];
        sets.insert(h, labels.heads_within(slot, bound));
    }
    NeighborSets { sets }
}

/// A-NCR: two clusters are adjacent iff some edge of `G` crosses them
/// (Definition 2); each head selects the heads of its adjacent
/// clusters. A single scan over the edge set finds all adjacent pairs;
/// duplicates are removed by one sort+dedup per head afterwards rather
/// than ordered insertion in the hot loop.
fn adjacent_heads<G: Adjacency>(g: &G, clustering: &Clustering) -> NeighborSets {
    // Accumulate into slot-indexed vectors (O(1) per crossing edge
    // instead of a map lookup), then sort+dedup once per head.
    let heads = &clustering.heads;
    let mut slot_of = vec![u32::MAX; g.node_count()];
    for (i, &h) in heads.iter().enumerate() {
        slot_of[h.index()] = i as u32;
    }
    let slot = |h: NodeId| -> usize {
        let s = slot_of[h.index()];
        assert_ne!(s, u32::MAX, "head present");
        s as usize
    };
    let mut partners: Vec<Vec<NodeId>> = vec![Vec::new(); heads.len()];
    let n = g.node_count() as u32;
    for u in (0..n).map(NodeId) {
        let hu = clustering.head_of(u);
        if hu.index() >= slot_of.len() {
            continue; // unaffiliated (departed/stranded sentinel): in no cluster
        }
        for &v in g.adj(u) {
            if v <= u {
                continue; // each undirected edge once
            }
            let hv = clustering.head_of(v);
            if hv.index() >= slot_of.len() {
                continue;
            }
            if hu != hv {
                partners[slot(hu)].push(hv);
                partners[slot(hv)].push(hu);
            }
        }
    }
    let sets = heads
        .iter()
        .zip(partners)
        .map(|(&h, mut p)| {
            p.sort_unstable();
            p.dedup();
            (h, p)
        })
        .collect();
    NeighborSets { sets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use adhoc_graph::graph::Graph;

    fn cluster_path9_k1() -> (Graph, Clustering) {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        assert_eq!(
            c.heads,
            vec![NodeId(0), NodeId(2), NodeId(4), NodeId(6), NodeId(8)]
        );
        (g, c)
    }

    #[test]
    fn nc_collects_heads_within_3_hops_for_k1() {
        let (g, c) = cluster_path9_k1();
        let nc = neighbor_clusterheads(&g, &c, NeighborRule::All2kPlus1);
        // d(0,2)=2, d(0,4)=4 > 3.
        assert_eq!(nc.of(NodeId(0)), &[NodeId(2)]);
        assert_eq!(nc.of(NodeId(4)), &[NodeId(2), NodeId(6)]);
        nc.check_symmetric().unwrap();
    }

    #[test]
    fn ac_on_path_matches_nc_when_all_clusters_touch() {
        let (g, c) = cluster_path9_k1();
        let ac = neighbor_clusterheads(&g, &c, NeighborRule::Adjacent);
        let nc = neighbor_clusterheads(&g, &c, NeighborRule::All2kPlus1);
        for &h in ac.sets.keys() {
            assert_eq!(ac.of(h), nc.of(h));
        }
    }

    #[test]
    fn ac_is_strict_subset_when_clusters_are_separated() {
        // Figure 2-style situation, k=1:
        // Cluster A: head 0 with member 4; cluster B: head 1 with
        // member 5; cluster C: head 2 with members 6,7 bridging A and
        // B. If A and B only touch through C's members, heads 0 and 1
        // are within 3 hops but NOT adjacent.
        //   0-4, 4-6, 6-2, 2-7, 7-5, 5-1  and make 6,7 adjacent.
        let g = Graph::from_edges(
            8,
            &[
                (0, 4),
                (4, 6),
                (6, 2),
                (2, 7),
                (7, 5),
                (5, 1),
                (6, 7),
                (2, 3),
            ],
        );
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        // Contest k=1: 0 wins {4}; 1 wins {5}; 2 wins {3,6,7};
        // 3: nbr {2}: 2 wins. 4: nbrs {0,6}: 0 wins. 5: nbrs {7,1}:
        // 1 wins. 6: nbrs {4,2,7}: 2 wins. 7: {2,5,6}: 2 wins.
        assert_eq!(c.heads, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(c.head_of(NodeId(4)), NodeId(0));
        assert_eq!(c.head_of(NodeId(5)), NodeId(1));
        assert_eq!(c.head_of(NodeId(6)), NodeId(2));
        assert_eq!(c.head_of(NodeId(7)), NodeId(2));

        let ac = neighbor_clusterheads(&g, &c, NeighborRule::Adjacent);
        let nc = neighbor_clusterheads(&g, &c, NeighborRule::All2kPlus1);
        // d(0,1) = 6 hops? 0-4-6-7-5-1 = 5 hops > 3, so even NC
        // excludes it here; instead check A<->C adjacency.
        assert_eq!(ac.of(NodeId(0)), &[NodeId(2)]);
        assert_eq!(ac.of(NodeId(1)), &[NodeId(2)]);
        assert_eq!(ac.of(NodeId(2)), &[NodeId(0), NodeId(1)]);
        ac.check_symmetric().unwrap();
        nc.check_symmetric().unwrap();
    }

    #[test]
    fn ac_subset_of_nc_randomized() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let ac = neighbor_clusterheads(&net.graph, &c, NeighborRule::Adjacent);
            let nc = neighbor_clusterheads(&net.graph, &c, NeighborRule::All2kPlus1);
            for (h, adj) in ac.iter() {
                let sup = nc.of(h);
                for v in adj {
                    assert!(
                        sup.contains(v),
                        "adjacent head {v:?} of {h:?} not within 2k+1 hops"
                    );
                }
            }
            assert!(ac.pair_count() <= nc.pair_count());
        }
    }

    #[test]
    fn adjacent_cluster_graph_is_connected_theorem1() {
        use adhoc_graph::connectivity;
        use adhoc_graph::graph::Graph as G2;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for k in 1..=4u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let ac = neighbor_clusterheads(&net.graph, &c, NeighborRule::Adjacent);
            // Build G'' as an index graph over heads.
            let idx: BTreeMap<NodeId, u32> = c
                .heads
                .iter()
                .enumerate()
                .map(|(i, &h)| (h, i as u32))
                .collect();
            let mut gpp = G2::new(c.heads.len());
            for (u, v) in ac.pairs() {
                gpp.add_edge(NodeId(idx[&u]), NodeId(idx[&v]));
            }
            assert!(
                connectivity::is_connected(&gpp),
                "Theorem 1 violated for k={k}"
            );
        }
    }

    #[test]
    fn adjacent_heads_distance_between_k1_and_2k1() {
        use adhoc_graph::bfs;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let ac = neighbor_clusterheads(&net.graph, &c, NeighborRule::Adjacent);
            for (u, v) in ac.pairs() {
                let d = bfs::distances(&net.graph, u)[v.index()];
                assert!(
                    d > k && d <= 2 * k + 1,
                    "adjacent heads {u:?},{v:?} at distance {d}, k={k}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a clusterhead")]
    fn of_non_head_panics() {
        let (g, c) = cluster_path9_k1();
        let nc = neighbor_clusterheads(&g, &c, NeighborRule::All2kPlus1);
        nc.of(NodeId(1));
    }

    #[test]
    fn single_cluster_has_empty_sets() {
        let g = gen::star(5);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let ac = neighbor_clusterheads(&g, &c, NeighborRule::Adjacent);
        assert!(ac.of(NodeId(0)).is_empty());
        assert_eq!(ac.pair_count(), 0);
    }
}
