//! Virtual links and the virtual graph of §3.2, arena-backed.
//!
//! A *virtual link* between two clusterheads is a canonical shortest
//! path between them in the original network `G`; its *virtual
//! distance* is the path's hop count. The virtual graph has the
//! clusterheads as vertices and one virtual link per selected neighbor
//! clusterhead pair — with the A-NCR rule it equals the adjacent
//! cluster graph `G''`.
//!
//! Canonical paths are the lexicographically smallest shortest paths
//! (`adhoc_graph::bfs::lexico_path_from_labels`) oriented from the
//! smaller endpoint ID, so the two endpoints of a link — and the
//! centralized and distributed implementations — always agree on which
//! nodes would become gateways.
//!
//! Storage is a [`LinkStore`]: a flat `(a, b)`-sorted index whose path
//! bytes all live in **one** shared arena (`offset/len` slices), not a
//! `BTreeMap` with a heap `Vec` per link. Borrowed [`LinkRef`] views
//! are handed out; [`VirtualLink`] remains as the owned
//! materialization for callers that need to keep a path around.
//! Construction reads per-head distance labels ([`HeadLabels`]) so one
//! BFS sweep per head serves every consumer.

use crate::adjacency::{self, NeighborRule, NeighborSets};
use crate::clustering::Clustering;
use adhoc_graph::bfs::{self, Adjacency};
use adhoc_graph::graph::NodeId;
use adhoc_graph::labels::{HeadLabels, LabelStore};
use adhoc_graph::lmst::TieWeight;
use adhoc_graph::paths;

/// An owned virtual link between clusterheads `a < b` (materialized
/// from a [`LinkRef`] when a caller needs ownership, e.g. for
/// rendering snapshots).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualLink {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
    /// Canonical shortest path from `a` to `b`, inclusive.
    pub path: Vec<NodeId>,
}

impl VirtualLink {
    /// Hop count (the paper's "virtual distance").
    pub fn hops(&self) -> u32 {
        paths::hop_count(&self.path)
    }

    /// The LMST weight triple `(hops, max id, min id)`.
    pub fn weight(&self) -> TieWeight<u32> {
        TieWeight::new(self.hops(), self.a, self.b)
    }

    /// Interior nodes — the nodes marked as gateways when this link is
    /// selected.
    pub fn interior(&self) -> &[NodeId] {
        paths::interior(&self.path)
    }

    /// Borrowed view of this link.
    pub fn as_ref(&self) -> LinkRef<'_> {
        LinkRef {
            a: self.a,
            b: self.b,
            path: &self.path,
        }
    }
}

/// A borrowed virtual link: endpoints plus a path slice into the
/// owning [`LinkStore`]'s arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkRef<'a> {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
    /// Canonical shortest path from `a` to `b`, inclusive.
    pub path: &'a [NodeId],
}

impl<'a> LinkRef<'a> {
    /// Hop count (the paper's "virtual distance").
    pub fn hops(&self) -> u32 {
        paths::hop_count(self.path)
    }

    /// The LMST weight triple `(hops, max id, min id)`.
    pub fn weight(&self) -> TieWeight<u32> {
        TieWeight::new(self.hops(), self.a, self.b)
    }

    /// Interior nodes — the nodes marked as gateways when this link is
    /// selected.
    pub fn interior(&self) -> &'a [NodeId] {
        paths::interior(self.path)
    }

    /// Materializes an owned [`VirtualLink`].
    pub fn to_owned(&self) -> VirtualLink {
        VirtualLink {
            a: self.a,
            b: self.b,
            path: self.path.to_vec(),
        }
    }
}

/// `(a, b, offset, len)` row of a [`LinkStore`].
#[derive(Clone, Copy, Debug)]
struct LinkEntry {
    a: NodeId,
    b: NodeId,
    off: u32,
    len: u32,
}

/// A set of virtual links with all path nodes in one shared arena.
///
/// Entries are sorted by `(a, b)` after construction, so lookups are a
/// binary search and iteration is in ascending pair order — the same
/// order the previous `BTreeMap` representation yielded.
#[derive(Clone, Debug, Default)]
pub struct LinkStore {
    entries: Vec<LinkEntry>,
    arena: Vec<NodeId>,
}

impl LinkStore {
    /// Appends the canonical path `a ⇝ b` walked from `labels` (which
    /// must be rooted at `b`). Returns whether the pair was connected
    /// within the labels' bound.
    pub(crate) fn push_walk<G: Adjacency, L: bfs::DistLabels>(
        &mut self,
        g: &G,
        a: NodeId,
        b: NodeId,
        labels: &L,
    ) -> bool {
        let off = self.arena.len();
        if !bfs::lexico_path_append(g, a, b, labels, &mut self.arena) {
            return false;
        }
        self.entries.push(LinkEntry {
            a,
            b,
            off: off as u32,
            len: (self.arena.len() - off) as u32,
        });
        true
    }

    /// Copies one link (entry + path bytes) from another store.
    fn push_copy(&mut self, link: LinkRef<'_>) {
        let off = self.arena.len() as u32;
        self.arena.extend_from_slice(link.path);
        self.entries.push(LinkEntry {
            a: link.a,
            b: link.b,
            off,
            len: link.path.len() as u32,
        });
    }

    /// Sorts the index by `(a, b)` (paths stay where they are — the
    /// entries carry their slices).
    pub(crate) fn finish(&mut self) {
        self.entries.sort_unstable_by_key(|e| (e.a, e.b));
    }

    fn view(&self, e: &LinkEntry) -> LinkRef<'_> {
        LinkRef {
            a: e.a,
            b: e.b,
            path: &self.arena[e.off as usize..(e.off + e.len) as usize],
        }
    }

    /// The link between `u` and `v` (order-insensitive).
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<LinkRef<'_>> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.entries
            .binary_search_by_key(&key, |e| (e.a, e.b))
            .ok()
            .map(|i| self.view(&self.entries[i]))
    }

    /// All links, ascending by `(a, b)`.
    pub fn iter(&self) -> impl Iterator<Item = LinkRef<'_>> {
        self.entries.iter().map(|e| self.view(e))
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no links.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The virtual graph over clusterheads under a neighbor rule.
#[derive(Clone, Debug)]
pub struct VirtualGraph {
    /// Clusterheads, ascending.
    pub heads: Vec<NodeId>,
    /// The neighbor clusterhead relation the graph was built from.
    pub neighbor_sets: NeighborSets,
    store: LinkStore,
}

impl VirtualGraph {
    /// Builds the virtual graph of `clustering` under `rule`: one
    /// canonical shortest path per selected pair, each at most `2k+1`
    /// hops (guaranteed by both rules). Runs one bounded BFS per head
    /// ([`HeadLabels`]) and derives everything from the labels.
    pub fn build<G: Adjacency>(g: &G, clustering: &Clustering, rule: NeighborRule) -> Self {
        let bound = 2 * clustering.k + 1;
        let labels = LabelStore::Dense(HeadLabels::build(g, &clustering.heads, bound));
        let neighbor_sets = match rule {
            NeighborRule::All2kPlus1 => adjacency::nc_from_labels(clustering, &labels),
            NeighborRule::Adjacent => adjacency::neighbor_clusterheads(g, clustering, rule),
        };
        Self::from_labels(g, clustering, neighbor_sets, &labels)
    }

    /// Builds the virtual graph for an already-computed neighbor
    /// relation from shared head labels — dense or sparse, the walks
    /// only need [`DistLabels`](adhoc_graph::bfs::DistLabels) row views
    /// (no graph traversal beyond the canonical label walks).
    ///
    /// # Panics
    /// Panics if `labels` lacks a selected head or was built with a
    /// bound below `2k+1`.
    pub fn from_labels<G: Adjacency>(
        g: &G,
        clustering: &Clustering,
        neighbor_sets: NeighborSets,
        labels: &LabelStore,
    ) -> Self {
        assert!(
            labels.bound() > 2 * clustering.k,
            "labels too shallow for the 2k+1 link bound"
        );
        let mut store = LinkStore::default();
        // Extract paths to all selected partners a < b from b's
        // distance labels.
        for (b, partners) in neighbor_sets.iter() {
            if !partners.iter().any(|&a| a < b) {
                continue;
            }
            let slot = labels.slot(b).expect("selected head is labeled");
            let row = labels.row(slot);
            for &a in partners.iter().filter(|&&a| a < b) {
                let ok = store.push_walk(g, a, b, &row);
                assert!(ok, "selected neighbor heads are within 2k+1 hops");
            }
        }
        store.finish();
        VirtualGraph {
            heads: clustering.heads.clone(),
            neighbor_sets,
            store,
        }
    }

    /// As [`Self::from_labels`], but after an **incremental** label
    /// update ([`LabelStore::apply_delta`]): links owned by a clean
    /// larger endpoint are copied byte-for-byte from `prev` (the
    /// canonical walk reads only that endpoint's distance row and the
    /// adjacency of nodes inside its ball, both provably untouched when
    /// the head is clean), and only links owned by `dirty` slots are
    /// re-walked. Produces exactly what [`Self::from_labels`] would on
    /// the new labels (pinned by tests).
    ///
    /// # Panics
    /// As [`Self::from_labels`], plus if a clean pair of the relation
    /// is missing from `prev` (which would mean the dirty set was
    /// unsound).
    pub fn from_labels_patched<G: Adjacency>(
        g: &G,
        clustering: &Clustering,
        neighbor_sets: NeighborSets,
        labels: &LabelStore,
        prev: &VirtualGraph,
        dirty_slots: &[bool],
    ) -> Self {
        assert!(
            labels.bound() > 2 * clustering.k,
            "labels too shallow for the 2k+1 link bound"
        );
        let mut store = LinkStore::default();
        for (b, partners) in neighbor_sets.iter() {
            if !partners.iter().any(|&a| a < b) {
                continue;
            }
            let slot = labels.slot(b).expect("selected head is labeled");
            if dirty_slots[slot] {
                let row = labels.row(slot);
                for &a in partners.iter().filter(|&&a| a < b) {
                    let ok = store.push_walk(g, a, b, &row);
                    assert!(ok, "selected neighbor heads are within 2k+1 hops");
                }
            } else {
                for &a in partners.iter().filter(|&&a| a < b) {
                    let link = prev
                        .link(a, b)
                        .expect("clean head's links persist across the delta");
                    store.push_copy(link);
                }
            }
        }
        store.finish();
        VirtualGraph {
            heads: clustering.heads.clone(),
            neighbor_sets,
            store,
        }
    }

    /// Derives the sub-virtual-graph induced by a coarser neighbor
    /// relation, copying canonical paths instead of re-walking them.
    /// Used by the evaluation engine to obtain the AC graph from the
    /// NC graph (A-NCR ⊆ NC: adjacent heads are within `2k+1` hops,
    /// Theorem 1).
    ///
    /// # Panics
    /// Panics if `neighbor_sets` selects a pair this graph lacks.
    pub fn restricted_to(&self, neighbor_sets: NeighborSets) -> Self {
        let mut store = LinkStore::default();
        for (a, b) in neighbor_sets.pairs() {
            let link = self
                .get_link(a, b)
                .expect("restricted relation is a subset of this graph");
            store.push_copy(link);
        }
        store.finish();
        VirtualGraph {
            heads: self.heads.clone(),
            neighbor_sets,
            store,
        }
    }

    /// Builds a virtual graph directly from a set of realized links
    /// (paths are copied into a fresh arena) — how a gateway
    /// *selection*'s backbone becomes a routable graph. The neighbor
    /// relation is derived from the link endpoints.
    ///
    /// # Panics
    /// Panics if a link endpoint is not in `heads`.
    pub fn from_links<'a>(
        heads: &[NodeId],
        links: impl IntoIterator<Item = LinkRef<'a>>,
    ) -> Self {
        let mut store = LinkStore::default();
        let mut pairs = Vec::new();
        for l in links {
            pairs.push((l.a, l.b));
            store.push_copy(l);
        }
        store.finish();
        let neighbor_sets = adjacency::NeighborSets::from_pairs(heads, pairs);
        VirtualGraph {
            heads: heads.to_vec(),
            neighbor_sets,
            store,
        }
    }

    /// The virtual link between `u` and `v` (order-insensitive).
    pub fn link(&self, u: NodeId, v: NodeId) -> Option<LinkRef<'_>> {
        self.store.get(u, v)
    }

    // Private alias so `restricted_to` reads unambiguously.
    fn get_link(&self, u: NodeId, v: NodeId) -> Option<LinkRef<'_>> {
        self.store.get(u, v)
    }

    /// Whether a virtual link between `u` and `v` exists.
    pub fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        self.link(u, v).is_some()
    }

    /// LMST weight of the `u`–`v` link, if present.
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<TieWeight<u32>> {
        self.link(u, v).map(|l| l.weight())
    }

    /// All links, ascending by `(a, b)`.
    pub fn links(&self) -> impl Iterator<Item = LinkRef<'_>> {
        self.store.iter()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.store.len()
    }
}

/// Virtual links between **all** pairs of clusterheads read off
/// unbounded head labels, for the centralized G-MST baseline.
/// Disconnected pairs are omitted (cannot happen on a connected `G`).
///
/// # Panics
/// Panics if `labels` is bounded or lacks a head of `clustering`.
pub fn complete_link_store<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
    labels: &HeadLabels,
) -> LinkStore {
    assert_eq!(labels.bound(), u32::MAX, "G-MST needs unbounded labels");
    let mut store = LinkStore::default();
    for (i, &b) in clustering.heads.iter().enumerate() {
        if i == 0 {
            continue;
        }
        let row = labels
            .slot(b)
            .map(|s| labels.row(s))
            .expect("every head is labeled");
        for &a in &clustering.heads[..i] {
            store.push_walk(g, a, b, &row);
        }
    }
    store.finish();
    store
}

/// Owned-`Vec` convenience over [`complete_link_store`], building its
/// own labels (one BFS per head, stopping at the farthest head — the
/// complete links only ever walk between heads).
pub fn complete_virtual_links<G: Adjacency>(g: &G, clustering: &Clustering) -> Vec<VirtualLink> {
    let mut labels = HeadLabels::default();
    labels.rebuild_reaching_heads(g, &clustering.heads);
    complete_link_store(g, clustering, &labels)
        .iter()
        .map(|l| l.to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use adhoc_graph::graph::Graph;

    fn path9() -> (Graph, Clustering) {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        (g, c)
    }

    #[test]
    fn virtual_links_on_path() {
        let (g, c) = path9();
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        // Heads 0,2,4,6,8; consecutive heads adjacent through shared
        // edges, each link 2 hops through the odd member.
        assert_eq!(vg.link_count(), 4);
        let l = vg.link(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(l.path, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(l.hops(), 2);
        assert_eq!(l.interior(), &[NodeId(1)]);
        assert!(vg.has_link(NodeId(4), NodeId(6)));
        assert!(!vg.has_link(NodeId(0), NodeId(8)));
    }

    #[test]
    fn link_weight_embeds_ids() {
        let (g, c) = path9();
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let w = vg.weight(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(w.w, 2);
        assert_eq!(w.lo, NodeId(0));
        assert_eq!(w.hi, NodeId(2));
        assert!(vg.weight(NodeId(0), NodeId(8)).is_none());
    }

    #[test]
    fn paths_are_valid_and_within_bound() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            for rule in [NeighborRule::Adjacent, NeighborRule::All2kPlus1] {
                let vg = VirtualGraph::build(&net.graph, &c, rule);
                for l in vg.links() {
                    assert!(paths::is_valid_path(&net.graph, l.path));
                    assert!(l.hops() <= 2 * k + 1);
                    assert!(l.a < l.b);
                    assert_eq!(l.path[0], l.a);
                    assert_eq!(*l.path.last().unwrap(), l.b);
                    // Interior nodes are never clusterheads when the
                    // path is within 2k+1 hops (each interior node is
                    // within k hops of one endpoint head).
                    for w in l.interior() {
                        assert!(!c.is_head(*w), "head {w:?} interior to a link");
                    }
                }
            }
        }
    }

    #[test]
    fn paths_are_canonical_shortest() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let net = gen::geometric(&gen::GeometricConfig::new(70, 100.0, 8.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&net.graph, &c, NeighborRule::Adjacent);
        for l in vg.links() {
            let d = bfs::distances(&net.graph, l.a);
            assert_eq!(l.hops(), d[l.b.index()], "virtual link not shortest");
            let independent = bfs::lexico_shortest_path(&net.graph, l.a, l.b, u32::MAX).unwrap();
            assert_eq!(l.path, &independent[..], "virtual link not canonical");
        }
    }

    #[test]
    fn restriction_matches_direct_build() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(19);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let nc = VirtualGraph::build(&net.graph, &c, NeighborRule::All2kPlus1);
            let ac_sets =
                adjacency::neighbor_clusterheads(&net.graph, &c, NeighborRule::Adjacent);
            let restricted = nc.restricted_to(ac_sets);
            let direct = VirtualGraph::build(&net.graph, &c, NeighborRule::Adjacent);
            assert_eq!(restricted.link_count(), direct.link_count());
            for l in direct.links() {
                let r = restricted.link(l.a, l.b).expect("same relation");
                assert_eq!(l.path, r.path, "paths must be byte-identical");
            }
        }
    }

    #[test]
    fn complete_links_cover_all_pairs() {
        let (g, c) = path9();
        let all = complete_virtual_links(&g, &c);
        let h = c.heads.len();
        assert_eq!(all.len(), h * (h - 1) / 2);
        // Longest pair: 0 to 8, 8 hops.
        let longest = all.iter().map(VirtualLink::hops).max().unwrap();
        assert_eq!(longest, 8);
    }

    #[test]
    fn empty_relation_for_single_cluster() {
        let g = gen::star(4);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        assert_eq!(vg.link_count(), 0);
        assert!(complete_virtual_links(&g, &c).is_empty());
    }

    #[test]
    fn owned_and_borrowed_views_agree() {
        let (g, c) = path9();
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let l = vg.link(NodeId(0), NodeId(2)).unwrap();
        let owned = l.to_owned();
        assert_eq!(owned.as_ref(), l);
        assert_eq!(owned.hops(), l.hops());
        assert_eq!(owned.weight(), l.weight());
        assert_eq!(owned.interior(), l.interior());
    }
}
