//! Virtual links and the virtual graph of §3.2.
//!
//! A *virtual link* between two clusterheads is a canonical shortest
//! path between them in the original network `G`; its *virtual
//! distance* is the path's hop count. The virtual graph has the
//! clusterheads as vertices and one virtual link per selected neighbor
//! clusterhead pair — with the A-NCR rule it equals the adjacent
//! cluster graph `G''`.
//!
//! Canonical paths are the lexicographically smallest shortest paths
//! (`adhoc_graph::bfs::lexico_shortest_path`) oriented from the smaller
//! endpoint ID, so the two endpoints of a link — and the centralized
//! and distributed implementations — always agree on which nodes would
//! become gateways.

use crate::adjacency::{self, NeighborRule, NeighborSets};
use crate::clustering::Clustering;
use adhoc_graph::bfs::{self, Adjacency, BfsScratch};
use adhoc_graph::graph::NodeId;
use adhoc_graph::lmst::TieWeight;
use adhoc_graph::paths;
use std::collections::BTreeMap;

/// A realized virtual link between clusterheads `a < b`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualLink {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
    /// Canonical shortest path from `a` to `b`, inclusive.
    pub path: Vec<NodeId>,
}

impl VirtualLink {
    /// Hop count (the paper's "virtual distance").
    pub fn hops(&self) -> u32 {
        paths::hop_count(&self.path)
    }

    /// The LMST weight triple `(hops, max id, min id)`.
    pub fn weight(&self) -> TieWeight<u32> {
        TieWeight::new(self.hops(), self.a, self.b)
    }

    /// Interior nodes — the nodes marked as gateways when this link is
    /// selected.
    pub fn interior(&self) -> &[NodeId] {
        paths::interior(&self.path)
    }
}

/// The virtual graph over clusterheads under a neighbor rule.
#[derive(Clone, Debug)]
pub struct VirtualGraph {
    /// Clusterheads, ascending.
    pub heads: Vec<NodeId>,
    /// The neighbor clusterhead relation the graph was built from.
    pub neighbor_sets: NeighborSets,
    links: BTreeMap<(NodeId, NodeId), VirtualLink>,
}

impl VirtualGraph {
    /// Builds the virtual graph of `clustering` under `rule`: one
    /// canonical shortest path per selected pair, each at most `2k+1`
    /// hops (guaranteed by both rules).
    pub fn build<G: Adjacency>(g: &G, clustering: &Clustering, rule: NeighborRule) -> Self {
        let neighbor_sets = adjacency::neighbor_clusterheads(g, clustering, rule);
        let bound = 2 * clustering.k + 1;
        let mut links = BTreeMap::new();
        let mut scratch = BfsScratch::new(g.node_count());
        // One bounded BFS per head b; extract paths to all selected
        // partners a < b from b's distance labels.
        for (b, partners) in neighbor_sets.iter() {
            let smaller: Vec<NodeId> = partners.iter().copied().filter(|&a| a < b).collect();
            if smaller.is_empty() {
                continue;
            }
            scratch.run(g, b, bound);
            for a in smaller {
                let path = bfs::lexico_path_from_labels(g, a, b, &scratch)
                    .expect("selected neighbor heads are within 2k+1 hops");
                links.insert((a, b), VirtualLink { a, b, path });
            }
        }
        VirtualGraph {
            heads: clustering.heads.clone(),
            neighbor_sets,
            links,
        }
    }

    /// The virtual link between `u` and `v` (order-insensitive).
    pub fn link(&self, u: NodeId, v: NodeId) -> Option<&VirtualLink> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.links.get(&key)
    }

    /// Whether a virtual link between `u` and `v` exists.
    pub fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        self.link(u, v).is_some()
    }

    /// LMST weight of the `u`–`v` link, if present.
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<TieWeight<u32>> {
        self.link(u, v).map(VirtualLink::weight)
    }

    /// All links, ascending by `(a, b)`.
    pub fn links(&self) -> impl Iterator<Item = &VirtualLink> {
        self.links.values()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

/// Virtual links between **all** pairs of clusterheads with no hop
/// bound, for the centralized G-MST baseline. Disconnected pairs are
/// omitted (cannot happen on a connected `G`).
pub fn complete_virtual_links<G: Adjacency>(g: &G, clustering: &Clustering) -> Vec<VirtualLink> {
    let mut out = Vec::new();
    let mut scratch = BfsScratch::new(g.node_count());
    for (i, &b) in clustering.heads.iter().enumerate() {
        if i == 0 {
            continue;
        }
        scratch.run(g, b, u32::MAX);
        for &a in &clustering.heads[..i] {
            if let Some(path) = bfs::lexico_path_from_labels(g, a, b, &scratch) {
                out.push(VirtualLink { a, b, path });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use adhoc_graph::graph::Graph;

    fn path9() -> (Graph, Clustering) {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        (g, c)
    }

    #[test]
    fn virtual_links_on_path() {
        let (g, c) = path9();
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        // Heads 0,2,4,6,8; consecutive heads adjacent through shared
        // edges, each link 2 hops through the odd member.
        assert_eq!(vg.link_count(), 4);
        let l = vg.link(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(l.path, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(l.hops(), 2);
        assert_eq!(l.interior(), &[NodeId(1)]);
        assert!(vg.has_link(NodeId(4), NodeId(6)));
        assert!(!vg.has_link(NodeId(0), NodeId(8)));
    }

    #[test]
    fn link_weight_embeds_ids() {
        let (g, c) = path9();
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let w = vg.weight(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(w.w, 2);
        assert_eq!(w.lo, NodeId(0));
        assert_eq!(w.hi, NodeId(2));
        assert!(vg.weight(NodeId(0), NodeId(8)).is_none());
    }

    #[test]
    fn paths_are_valid_and_within_bound() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            for rule in [NeighborRule::Adjacent, NeighborRule::All2kPlus1] {
                let vg = VirtualGraph::build(&net.graph, &c, rule);
                for l in vg.links() {
                    assert!(paths::is_valid_path(&net.graph, &l.path));
                    assert!(l.hops() <= 2 * k + 1);
                    assert!(l.a < l.b);
                    assert_eq!(l.path[0], l.a);
                    assert_eq!(*l.path.last().unwrap(), l.b);
                    // Interior nodes are never clusterheads when the
                    // path is within 2k+1 hops (each interior node is
                    // within k hops of one endpoint head).
                    for w in l.interior() {
                        assert!(!c.is_head(*w), "head {w:?} interior to a link");
                    }
                }
            }
        }
    }

    #[test]
    fn paths_are_canonical_shortest() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let net = gen::geometric(&gen::GeometricConfig::new(70, 100.0, 8.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&net.graph, &c, NeighborRule::Adjacent);
        for l in vg.links() {
            let d = bfs::distances(&net.graph, l.a);
            assert_eq!(l.hops(), d[l.b.index()], "virtual link not shortest");
            let independent = bfs::lexico_shortest_path(&net.graph, l.a, l.b, u32::MAX).unwrap();
            assert_eq!(l.path, independent, "virtual link not canonical");
        }
    }

    #[test]
    fn complete_links_cover_all_pairs() {
        let (g, c) = path9();
        let all = complete_virtual_links(&g, &c);
        let h = c.heads.len();
        assert_eq!(all.len(), h * (h - 1) / 2);
        // Longest pair: 0 to 8, 8 hops.
        let longest = all.iter().map(VirtualLink::hops).max().unwrap();
        assert_eq!(longest, 8);
    }

    #[test]
    fn empty_relation_for_single_cluster() {
        let g = gen::star(4);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        assert_eq!(vg.link_count(), 0);
        assert!(complete_virtual_links(&g, &c).is_empty());
    }
}
