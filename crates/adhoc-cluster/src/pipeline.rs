//! End-to-end pipeline: clustering → neighbor selection → gateways →
//! CDS, packaged as the five algorithms of the paper's evaluation.

use crate::adjacency::NeighborRule;
use crate::cds::Cds;
use crate::clustering::{self, Clustering, MemberPolicy};
use crate::gateway::{self, GatewaySelection};
use crate::priority::LowestId;
use crate::virtual_graph::VirtualGraph;
use adhoc_graph::bfs::Adjacency;
use serde::{Deserialize, Serialize};

/// The five gateway-construction algorithms compared in §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Mesh over all clusterheads within `2k+1` hops.
    NcMesh,
    /// Mesh over adjacent clusterheads (A-NCR).
    AcMesh,
    /// LMSTGA over all clusterheads within `2k+1` hops.
    NcLmst,
    /// LMSTGA over adjacent clusterheads — the paper's AC-LMST.
    AcLmst,
    /// Centralized global-MST lower bound.
    GMst,
}

impl Algorithm {
    /// All five algorithms, in the paper's legend order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::NcMesh,
        Algorithm::AcMesh,
        Algorithm::AcLmst,
        Algorithm::NcLmst,
        Algorithm::GMst,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::NcMesh => "NC-Mesh",
            Algorithm::AcMesh => "AC-Mesh",
            Algorithm::NcLmst => "NC-LMST",
            Algorithm::AcLmst => "AC-LMST",
            Algorithm::GMst => "G-MST",
        }
    }

    /// The neighbor clusterhead rule the algorithm uses (`None` for
    /// G-MST, which is global).
    pub fn neighbor_rule(self) -> Option<NeighborRule> {
        match self {
            Algorithm::NcMesh | Algorithm::NcLmst => Some(NeighborRule::All2kPlus1),
            Algorithm::AcMesh | Algorithm::AcLmst => Some(NeighborRule::Adjacent),
            Algorithm::GMst => None,
        }
    }

    /// Whether the algorithm is localized (`2k+1`-hop information
    /// only).
    pub fn is_localized(self) -> bool {
        self != Algorithm::GMst
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pipeline parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// The clustering radius `k` (paper: 1–4).
    pub k: u32,
    /// Member affiliation policy (paper figures use ID-based).
    pub policy: MemberPolicy,
}

impl PipelineConfig {
    /// Config with the paper's defaults (ID-based members).
    pub fn new(k: u32) -> Self {
        PipelineConfig {
            k,
            policy: MemberPolicy::IdBased,
        }
    }
}

/// Everything the pipeline produced.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// The k-hop clustering.
    pub clustering: Clustering,
    /// The virtual graph (absent for G-MST, which skips the localized
    /// relation).
    pub virtual_graph: Option<VirtualGraph>,
    /// The realized links and marked gateways.
    pub selection: GatewaySelection,
    /// The final k-hop CDS.
    pub cds: Cds,
}

/// Runs lowest-ID clustering followed by `algorithm`'s neighbor and
/// gateway phases.
pub fn run<G: Adjacency>(g: &G, algorithm: Algorithm, cfg: &PipelineConfig) -> PipelineOutput {
    let clustering = clustering::cluster(g, cfg.k, &LowestId, cfg.policy);
    run_on(g, algorithm, &clustering)
}

/// Runs only the neighbor and gateway phases on an existing clustering
/// (so one clustering can be shared across all five algorithms, as the
/// paper's comparisons require).
pub fn run_on<G: Adjacency>(
    g: &G,
    algorithm: Algorithm,
    clustering: &Clustering,
) -> PipelineOutput {
    let (virtual_graph, selection) = match algorithm {
        Algorithm::GMst => (None, gateway::gmst(g, clustering)),
        _ => {
            let rule = algorithm.neighbor_rule().expect("localized algorithm");
            let vg = VirtualGraph::build(g, clustering, rule);
            let sel = match algorithm {
                Algorithm::NcMesh | Algorithm::AcMesh => gateway::mesh(&vg, clustering),
                Algorithm::NcLmst | Algorithm::AcLmst => gateway::lmstga(&vg, clustering),
                Algorithm::GMst => unreachable!(),
            };
            (Some(vg), sel)
        }
    };
    let cds = Cds::assemble(clustering, &selection);
    PipelineOutput {
        clustering: clustering.clone(),
        virtual_graph,
        selection,
        cds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::gen;

    #[test]
    fn all_algorithms_produce_valid_cds() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(100);
        for k in 1..=4u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
            let cfg = PipelineConfig::new(k);
            for alg in Algorithm::ALL {
                let out = run(&net.graph, alg, &cfg);
                out.clustering.verify(&net.graph).unwrap();
                out.cds
                    .verify(&net.graph, k)
                    .unwrap_or_else(|e| panic!("{alg} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn paper_orderings_hold_in_expectation() {
        // Deterministic orderings that hold instance-by-instance:
        //   AC-Mesh <= NC-Mesh, AC-LMST <= mesh counterparts' links.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(200);
        for k in 2..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(120, 100.0, 6.0), &mut rng);
            let cfg = PipelineConfig::new(k);
            let clustering = crate::clustering::cluster(&net.graph, cfg.k, &LowestId, cfg.policy);
            let nc_mesh = run_on(&net.graph, Algorithm::NcMesh, &clustering);
            let ac_mesh = run_on(&net.graph, Algorithm::AcMesh, &clustering);
            let nc_lmst = run_on(&net.graph, Algorithm::NcLmst, &clustering);
            let ac_lmst = run_on(&net.graph, Algorithm::AcLmst, &clustering);
            let gmst = run_on(&net.graph, Algorithm::GMst, &clustering);
            assert!(ac_mesh.cds.size() <= nc_mesh.cds.size());
            assert!(nc_lmst.cds.size() <= nc_mesh.cds.size());
            assert!(ac_lmst.cds.size() <= ac_mesh.cds.size());
            // G-MST uses h-1 links, the global minimum number.
            assert!(gmst.selection.links_used.len() <= ac_lmst.selection.links_used.len());
        }
    }

    #[test]
    fn shared_clustering_across_algorithms() {
        let g = gen::path(9);
        let cfg = PipelineConfig::new(1);
        let a = run(&g, Algorithm::AcLmst, &cfg);
        let b = run(&g, Algorithm::NcMesh, &cfg);
        assert_eq!(a.clustering.heads, b.clustering.heads);
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::AcLmst.name(), "AC-LMST");
        assert_eq!(format!("{}", Algorithm::GMst), "G-MST");
        assert!(Algorithm::AcLmst.is_localized());
        assert!(!Algorithm::GMst.is_localized());
        assert_eq!(Algorithm::GMst.neighbor_rule(), None);
        assert_eq!(
            Algorithm::NcMesh.neighbor_rule(),
            Some(NeighborRule::All2kPlus1)
        );
        assert_eq!(Algorithm::ALL.len(), 5);
    }

    #[test]
    fn gmst_output_has_no_virtual_graph() {
        let g = gen::path(9);
        let out = run(&g, Algorithm::GMst, &PipelineConfig::new(1));
        assert!(out.virtual_graph.is_none());
        assert!(out.cds.verify(&g, 1).is_ok());
    }
}
