//! End-to-end pipeline: clustering → neighbor selection → gateways →
//! CDS, packaged as the five algorithms of the paper's evaluation.
//!
//! Two entry points exist for the per-algorithm phases:
//!
//! * [`run_on`] — evaluate **one** algorithm on a shared clustering
//!   (the original API, kept as a thin compatible wrapper).
//! * [`run_all`] — the single-sweep evaluation engine: evaluate **all
//!   five** algorithms from one [`LabelStore`] build (one BFS per
//!   clusterhead) and one NC virtual graph; the AC graph is derived by
//!   filtering NC links against the adjacency relation (A-NCR ⊆ NC,
//!   Theorem 1), and G-MST reads the same unbounded labels. This is
//!   what the Monte-Carlo harness runs — it removes the ~5× redundant
//!   graph traversal per replicate that calling [`run_on`] per
//!   algorithm costs, while producing bit-identical output (enforced
//!   by the `run_all_equivalence` proptest).
//! * [`update_all`] — the **incremental churn engine**: given the
//!   previous evaluation, its warm [`EvalScratch`], and a
//!   [`TopologyDelta`], refresh only the labels, virtual links, and
//!   selections the changed edges can have affected (dirty-head set),
//!   falling back to [`run_all`] past a dirty-fraction threshold.
//!   Output is bit-for-bit identical to a from-scratch [`run_all`] on
//!   the new graph (enforced by the `update_all_equivalence` proptest).

use crate::adjacency::{self, NeighborRule};
use crate::cds::Cds;
use crate::clustering::{self, Clustering, MemberPolicy};
use crate::gateway::{self, GatewaySelection};
use crate::priority::LowestId;
use crate::virtual_graph::VirtualGraph;
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::delta::TopologyDelta;
use adhoc_graph::graph::NodeId;
use adhoc_graph::obs::Metrics;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use adhoc_graph::labels::{LabelMode, LabelStore};
pub use adhoc_graph::par::Parallelism;

/// The five gateway-construction algorithms compared in §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Mesh over all clusterheads within `2k+1` hops.
    NcMesh,
    /// Mesh over adjacent clusterheads (A-NCR).
    AcMesh,
    /// LMSTGA over all clusterheads within `2k+1` hops.
    NcLmst,
    /// LMSTGA over adjacent clusterheads — the paper's AC-LMST.
    AcLmst,
    /// Centralized global-MST lower bound.
    GMst,
}

impl Algorithm {
    /// All five algorithms, in the paper's legend order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::NcMesh,
        Algorithm::AcMesh,
        Algorithm::AcLmst,
        Algorithm::NcLmst,
        Algorithm::GMst,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::NcMesh => "NC-Mesh",
            Algorithm::AcMesh => "AC-Mesh",
            Algorithm::NcLmst => "NC-LMST",
            Algorithm::AcLmst => "AC-LMST",
            Algorithm::GMst => "G-MST",
        }
    }

    /// The neighbor clusterhead rule the algorithm uses (`None` for
    /// G-MST, which is global).
    pub fn neighbor_rule(self) -> Option<NeighborRule> {
        match self {
            Algorithm::NcMesh | Algorithm::NcLmst => Some(NeighborRule::All2kPlus1),
            Algorithm::AcMesh | Algorithm::AcLmst => Some(NeighborRule::Adjacent),
            Algorithm::GMst => None,
        }
    }

    /// Whether the algorithm is localized (`2k+1`-hop information
    /// only).
    pub fn is_localized(self) -> bool {
        self != Algorithm::GMst
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pipeline parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// The clustering radius `k` (paper: 1–4).
    pub k: u32,
    /// Member affiliation policy (paper figures use ID-based).
    pub policy: MemberPolicy,
}

impl PipelineConfig {
    /// Config with the paper's defaults (ID-based members).
    pub fn new(k: u32) -> Self {
        PipelineConfig {
            k,
            policy: MemberPolicy::IdBased,
        }
    }
}

/// Everything the pipeline produced.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// The k-hop clustering.
    pub clustering: Clustering,
    /// The virtual graph (absent for G-MST, which skips the localized
    /// relation).
    pub virtual_graph: Option<VirtualGraph>,
    /// The realized links and marked gateways.
    pub selection: GatewaySelection,
    /// The final k-hop CDS.
    pub cds: Cds,
}

/// Runs lowest-ID clustering followed by `algorithm`'s neighbor and
/// gateway phases.
pub fn run<G: Adjacency + Sync>(g: &G, algorithm: Algorithm, cfg: &PipelineConfig) -> PipelineOutput {
    let clustering = clustering::cluster(g, cfg.k, &LowestId, cfg.policy);
    run_on(g, algorithm, &clustering)
}

/// Runs only the neighbor and gateway phases on an existing clustering
/// (so one clustering can be shared across all five algorithms, as the
/// paper's comparisons require).
pub fn run_on<G: Adjacency + Sync>(
    g: &G,
    algorithm: Algorithm,
    clustering: &Clustering,
) -> PipelineOutput {
    run_on_with(g, algorithm, clustering, &mut EvalScratch::with_mode(LabelMode::Dense))
}

/// As [`run_on`], reusing `scratch` — and with it the scratch's label
/// layout policy, which is how `khop run --labels …` evaluates a
/// single algorithm under the sparse layout without paying for the
/// other four. Output is bit-identical across layouts (pinned by the
/// `label_equivalence` proptests). G-MST ignores the scratch: the
/// centralized baseline reads unbounded head-to-head distances, not
/// the localized `2k+1` store.
pub fn run_on_with<G: Adjacency + Sync>(
    g: &G,
    algorithm: Algorithm,
    clustering: &Clustering,
    scratch: &mut EvalScratch,
) -> PipelineOutput {
    let (virtual_graph, selection) = match algorithm {
        Algorithm::GMst => (None, gateway::gmst(g, clustering)),
        _ => {
            let bound = 2 * clustering.k + 1;
            scratch.ensure_layout(g.node_count(), clustering.heads.len());
            {
                let _sweep = scratch.metrics.span("labels.sweep_ns");
                scratch
                    .labels
                    .rebuild_with(g, &clustering.heads, bound, scratch.par);
            }
            scratch.metrics.inc("pipeline.run_on");
            scratch
                .metrics
                .add("labels.rows_swept", clustering.heads.len() as u64);
            let rule = algorithm.neighbor_rule().expect("localized algorithm");
            let sets = match rule {
                NeighborRule::All2kPlus1 => adjacency::nc_from_labels(clustering, &scratch.labels),
                NeighborRule::Adjacent => adjacency::neighbor_clusterheads(g, clustering, rule),
            };
            let vg = VirtualGraph::from_labels(g, clustering, sets, &scratch.labels);
            let sel = match algorithm {
                Algorithm::NcMesh | Algorithm::AcMesh => gateway::mesh(&vg, clustering),
                Algorithm::NcLmst | Algorithm::AcLmst => {
                    gateway::lmstga_with(&mut scratch.lmstga, &vg, clustering)
                }
                Algorithm::GMst => unreachable!(),
            };
            (Some(vg), sel)
        }
    };
    let cds = Cds::assemble(clustering, &selection);
    PipelineOutput {
        clustering: clustering.clone(),
        virtual_graph,
        selection,
        cds,
    }
}

/// Reusable per-worker state of the evaluation engine: the head-label
/// arena persists across replicates within a thread, so a warm worker
/// pays no per-replicate allocation for the label sweep.
///
/// The arena lives behind a [`LabelStore`] in one of two layouts — the
/// dense `heads × n` distance matrix or the sparse ball-indexed rows —
/// selected by the scratch's [`LabelMode`]. The default `Auto` mode
/// keeps paper-scale grids on the dense layout and switches to sparse
/// once the projected flat arena would exceed
/// [`adhoc_graph::labels::AUTO_SPARSE_THRESHOLD_BYTES`] (the regime
/// where `O(h · n)` memory, not time, caps scale). Every product is
/// bit-for-bit identical across layouts (pinned by the
/// `label_equivalence` proptests).
#[derive(Clone, Debug, Default)]
pub struct EvalScratch {
    labels: LabelStore,
    mode: LabelMode,
    par: Parallelism,
    lmstga: gateway::LmstgaScratch,
    metrics: Metrics,
}

impl EvalScratch {
    /// Fresh scratch in [`LabelMode::Auto`]; buffers grow on first use
    /// and are then reused. The worker count for label builds/repairs
    /// defaults to [`Parallelism::from_env`] (`KHOP_WORKERS`, else
    /// available cores) — output is bit-identical at any count.
    pub fn new() -> Self {
        EvalScratch::default()
    }

    /// Fresh scratch with an explicit label layout policy.
    pub fn with_mode(mode: LabelMode) -> Self {
        EvalScratch::with_tuning(mode, Parallelism::default())
    }

    /// Fresh scratch with an explicit label layout **and** worker
    /// count.
    pub fn with_tuning(mode: LabelMode, par: Parallelism) -> Self {
        EvalScratch {
            labels: LabelStore::for_mode(mode, 0, 0),
            mode,
            par,
            lmstga: gateway::LmstgaScratch::default(),
            metrics: Metrics::disabled(),
        }
    }

    /// The configured label layout policy.
    pub fn mode(&self) -> LabelMode {
        self.mode
    }

    /// The configured worker-count policy for label builds/repairs.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Sets the worker count for subsequent label builds/repairs.
    /// Purely a throughput knob: every output is bit-identical for any
    /// worker count (pinned by the `parallel_equivalence` suite).
    pub fn set_workers(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// The head-label arena of the last [`run_all_with`] /
    /// [`update_all`] call. Maintenance policies read distances off it
    /// (orphan and head-merge detection) instead of re-running BFS.
    pub fn labels(&self) -> &LabelStore {
        &self.labels
    }

    /// Attaches an observability handle: subsequent sweeps, advances,
    /// and incremental updates report counters and span timings into
    /// it. The default is [`Metrics::disabled`], where every report is
    /// a single-branch no-op.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The attached observability handle (disabled unless
    /// [`set_metrics`](EvalScratch::set_metrics) installed a live one).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Heap bytes currently held by the label arena — `O(heads × n)`
    /// dense, `O(Σ ball sizes + n)` sparse. Recorded per grid cell by
    /// `perf_baseline` (both layouts), which is the data the ROADMAP's
    /// dense-vs-sparse decision closed on.
    pub fn labels_memory_bytes(&self) -> usize {
        self.labels.memory_bytes()
    }

    /// Swaps in the layout the mode wants for an upcoming build over
    /// `heads` sources on an `n`-node graph. A swap drops the warm
    /// arena (forcing the rebuild the caller is about to do anyway);
    /// with a stable `(n, heads)` the layout never flaps.
    fn ensure_layout(&mut self, n: usize, heads: usize) {
        if self.mode.wants_sparse(n, heads) != self.labels.is_sparse() {
            self.labels = LabelStore::for_mode(self.mode, n, heads);
        }
    }
}

/// One algorithm's share of an [`EvaluationOutput`].
#[derive(Clone, Debug)]
pub struct AlgorithmOutput {
    /// The realized links and marked gateways.
    pub selection: GatewaySelection,
    /// The final k-hop CDS.
    pub cds: Cds,
}

/// Everything [`run_all`] produced: all five algorithms evaluated from
/// one shared label sweep.
#[derive(Clone, Debug)]
pub struct EvaluationOutput {
    /// The shared k-hop clustering.
    pub clustering: Clustering,
    /// The NC (`2k+1`-hop) virtual graph, shared by NC-Mesh / NC-LMST.
    pub nc_graph: VirtualGraph,
    /// The AC (A-NCR) virtual graph — the NC graph restricted to
    /// adjacent pairs — shared by AC-Mesh / AC-LMST.
    pub ac_graph: VirtualGraph,
    /// Per-algorithm selections and CDSs (all five present).
    pub outputs: BTreeMap<Algorithm, AlgorithmOutput>,
}

impl EvaluationOutput {
    /// The output of `algorithm`.
    ///
    /// # Panics
    /// Never in practice: [`run_all`] populates all five algorithms.
    pub fn of(&self, algorithm: Algorithm) -> &AlgorithmOutput {
        &self.outputs[&algorithm]
    }

    /// The realized backbone of `algorithm` as path-carrying link
    /// views: its selection's `links_used` resolved against the graph
    /// the selection was drawn from (NC for the NC algorithms and
    /// G-MST, AC for the AC ones). This is what the route-serving
    /// subsystem compiles a [`RoutePlan`](crate::routing::RoutePlan)
    /// from — routes then travel only links that algorithm's CDS
    /// actually realizes.
    ///
    /// # Panics
    /// Panics if a selected link has no path in the evaluation's
    /// graphs. The localized algorithms select subsets of their own
    /// graph, so this concerns only G-MST's degraded-clustering
    /// fallback, where a link may exceed the `2k+1` label bound —
    /// such backbones are not servable from localized state.
    pub fn selected_links(&self, algorithm: Algorithm) -> Vec<crate::virtual_graph::LinkRef<'_>> {
        let graph = match algorithm {
            Algorithm::AcMesh | Algorithm::AcLmst => &self.ac_graph,
            Algorithm::NcMesh | Algorithm::NcLmst | Algorithm::GMst => &self.nc_graph,
        };
        self.of(algorithm)
            .selection
            .links_used
            .iter()
            .map(|&(a, b)| {
                graph.link(a, b).unwrap_or_else(|| {
                    panic!("{algorithm} selected {a:?}-{b:?} outside the 2k+1 link bound")
                })
            })
            .collect()
    }
}

/// Evaluates **all five** algorithms on a shared clustering with one
/// head-label sweep (see the module docs for the dataflow). Equivalent
/// to — but much faster than — calling [`run_on`] once per algorithm.
pub fn run_all<G: Adjacency + Sync>(g: &G, clustering: &Clustering) -> EvaluationOutput {
    run_all_with(g, clustering, &mut EvalScratch::new())
}

/// As [`run_all`], reusing `scratch` across calls (the Monte-Carlo
/// harness keeps one per worker thread).
pub fn run_all_with<G: Adjacency + Sync>(
    g: &G,
    clustering: &Clustering,
    scratch: &mut EvalScratch,
) -> EvaluationOutput {
    // One BFS per head, bounded to the paper's 2k+1 locality radius.
    // These labels serve the NC relation, both virtual graphs, and —
    // via the Theorem-1 bottleneck argument in
    // [`gateway::gmst_via_nc`] — even the global MST baseline, so no
    // unbounded traversal happens on the hot path at all.
    let bound = 2 * clustering.k + 1;
    scratch.ensure_layout(g.node_count(), clustering.heads.len());
    {
        let _sweep = scratch.metrics.span("labels.sweep_ns");
        scratch
            .labels
            .rebuild_with(g, &clustering.heads, bound, scratch.par);
    }
    scratch.metrics.inc("pipeline.run_all");
    scratch
        .metrics
        .add("labels.rows_swept", clustering.heads.len() as u64);
    let labels = &scratch.labels;

    let nc_sets = adjacency::nc_from_labels(clustering, labels);
    let nc_graph = VirtualGraph::from_labels(g, clustering, nc_sets, labels);
    let _tail = scratch.metrics.span("pipeline.eval_tail_ns");
    eval_from_nc(g, clustering, labels, nc_graph, &mut scratch.lmstga)
}

/// Shared tail of [`run_all_with`] and [`update_all`]: everything
/// downstream of the NC virtual graph (AC restriction, the four
/// localized selections, G-MST, CDS assembly). All inputs here live in
/// head space, so this stage costs `O(h · local degree²)` — negligible
/// next to the label sweeps and path walks that produced `nc_graph`.
fn eval_from_nc<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
    labels: &LabelStore,
    nc_graph: VirtualGraph,
    lmstga: &mut gateway::LmstgaScratch,
) -> EvaluationOutput {
    let ac_sets = adjacency::neighbor_clusterheads(g, clustering, NeighborRule::Adjacent);
    #[cfg(debug_assertions)]
    for (u, v) in ac_sets.pairs() {
        let d = labels.head_dist(u, v);
        // Theorem 1's upper bound. (The k+1 lower bound holds for fresh
        // elections but not for *maintained* clusterings, whose heads
        // may legally drift within k hops between re-elections.)
        debug_assert!(
            d <= 2 * clustering.k + 1,
            "A-NCR pair {u:?},{v:?} at distance {d} contradicts Theorem 1 (k={})",
            clustering.k
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = labels;

    // On dense deployments every pair of nearby clusters often touches,
    // making the AC relation literally equal to NC — then the AC graph
    // and both AC selections are the NC ones and need no recomputation.
    let ac_is_nc = ac_sets == nc_graph.neighbor_sets;
    let ac_graph = if ac_is_nc {
        nc_graph.clone()
    } else {
        nc_graph.restricted_to(ac_sets)
    };

    let nc_mesh = gateway::mesh(&nc_graph, clustering);
    let ac_mesh = if ac_is_nc {
        nc_mesh.clone()
    } else {
        gateway::mesh(&ac_graph, clustering)
    };
    let nc_lmst = gateway::lmstga_with(lmstga, &nc_graph, clustering);
    let ac_lmst = if ac_is_nc {
        nc_lmst.clone()
    } else {
        gateway::lmstga_with(lmstga, &ac_graph, clustering)
    };
    let g_mst = gateway::gmst_via_nc(g, &nc_graph, clustering);

    let mut outputs = BTreeMap::new();
    for (alg, selection) in [
        (Algorithm::NcMesh, nc_mesh),
        (Algorithm::AcMesh, ac_mesh),
        (Algorithm::NcLmst, nc_lmst),
        (Algorithm::AcLmst, ac_lmst),
        (Algorithm::GMst, g_mst),
    ] {
        let cds = Cds::assemble(clustering, &selection);
        outputs.insert(alg, AlgorithmOutput { selection, cds });
    }
    EvaluationOutput {
        clustering: clustering.clone(),
        nc_graph,
        ac_graph,
        outputs,
    }
}

/// Dirty fraction above which [`update_all`] stops being incremental:
/// when a delta touches more than this share of the clusterheads, the
/// per-row bookkeeping costs more than the full label rebuild it would
/// save, so the engine falls back to [`run_all_with`].
pub const DIRTY_FRACTION_FALLBACK: f64 = 0.5;

/// How [`update_all`] processed a delta (returned alongside the
/// refreshed output; benches and maintenance policies report it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// Clusterheads whose `2k+1` ball a changed edge touched (equals
    /// `head_count` when the engine fell back to a full evaluation).
    pub dirty_heads: usize,
    /// Total clusterheads.
    pub head_count: usize,
    /// Whether the engine fell back to a from-scratch [`run_all_with`]
    /// (dirty fraction above [`DIRTY_FRACTION_FALLBACK`], incompatible
    /// scratch, or a changed head set).
    pub rebuilt: bool,
}

impl UpdateReport {
    /// Dirty heads as a fraction of all heads (1.0 on fallback).
    pub fn dirty_fraction(&self) -> f64 {
        if self.head_count == 0 {
            0.0
        } else {
            self.dirty_heads as f64 / self.head_count as f64
        }
    }
}

/// How [`advance_labels`] brought the scratch labels up to date with a
/// post-delta graph (phase 1 of an incremental refresh).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabelAdvance {
    /// Only these slots were re-swept; all other rows are provably
    /// unchanged.
    Incremental {
        /// Dirty head slots, ascending (indexes into the head list).
        dirty: Vec<usize>,
    },
    /// The labels were rebuilt from scratch (dirty fraction above
    /// [`DIRTY_FRACTION_FALLBACK`], or the scratch did not match the
    /// clustering/graph).
    Rebuilt,
}

impl LabelAdvance {
    /// Number of head slots this advance re-swept (`head_count` when
    /// the labels were rebuilt wholesale). This is the `dirty_heads`
    /// figure maintenance reports surface.
    pub fn dirty_count(&self, head_count: usize) -> usize {
        match self {
            LabelAdvance::Incremental { dirty } => dirty.len(),
            LabelAdvance::Rebuilt => head_count,
        }
    }

    /// Whether the advance provably changed **no** label row — the
    /// delta was absorbed outside every head's `2k+1` ball, so every
    /// distance a maintenance policy reads is bit-identical to the
    /// previous step's.
    pub fn untouched(&self) -> bool {
        matches!(self, LabelAdvance::Incremental { dirty } if dirty.is_empty())
    }
}

/// Phase 1 of [`update_all`]: advances `scratch`'s label arena from the
/// pre-delta graph to `g` (the **post-delta** graph), re-sweeping only
/// the heads whose `2k+1` ball a changed edge touched.
///
/// Split out so maintenance policies can *read the refreshed labels*
/// (orphan members, head merges) and repair the clustering **before**
/// [`update_all_after`] derives the virtual graphs — a clustering whose
/// coverage churn has broken can place adjacent heads beyond `2k+1`
/// hops, which the virtual-graph builders reject.
pub fn advance_labels<G: Adjacency + Sync>(
    g: &G,
    clustering: &Clustering,
    delta: &TopologyDelta,
    scratch: &mut EvalScratch,
) -> LabelAdvance {
    let bound = 2 * clustering.k + 1;
    let _advance = scratch.metrics.span("labels.advance_ns");
    // A layout switch (auto heuristic crossing its threshold) empties
    // the store, which the compatibility test below turns into the
    // full rebuild such a switch requires anyway.
    scratch.ensure_layout(g.node_count(), clustering.heads.len());
    let compatible = scratch.labels.heads() == &clustering.heads[..]
        && scratch.labels.bound() == bound
        && scratch.labels.node_count() == g.node_count();
    if !compatible {
        scratch.metrics.inc("labels.rebuild_fallback");
        scratch
            .labels
            .rebuild_with(g, &clustering.heads, bound, scratch.par);
        return LabelAdvance::Rebuilt;
    }
    let dirty = scratch.labels.dirty_slots(delta);
    if dirty.len() as f64 > DIRTY_FRACTION_FALLBACK * clustering.heads.len() as f64 {
        scratch.metrics.inc("labels.rebuild_fallback");
        scratch
            .labels
            .rebuild_with(g, &clustering.heads, bound, scratch.par);
        return LabelAdvance::Rebuilt;
    }
    scratch.metrics.add("labels.rows_repaired", dirty.len() as u64);
    scratch.labels.apply_delta_with(g, &dirty, scratch.par);
    LabelAdvance::Incremental { dirty }
}

/// Phase 2 of [`update_all`]: derives the full five-algorithm
/// evaluation from labels already advanced by [`advance_labels`].
/// `clustering` must keep the head set the labels were advanced for,
/// but may carry repaired member affiliations (they only feed the A-NCR
/// edge scan, which is recomputed every time). `prev` must be the
/// evaluation of the pre-delta graph on the same head set — its NC rows
/// and canonical paths are reused for every clean head.
pub fn update_all_after<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
    advance: &LabelAdvance,
    prev: &EvaluationOutput,
    scratch: &mut EvalScratch,
) -> (EvaluationOutput, UpdateReport) {
    let heads = clustering.heads.len();
    assert_eq!(
        scratch.labels.heads(),
        &clustering.heads[..],
        "labels were advanced for a different head set"
    );
    scratch.metrics.inc("pipeline.update_all");
    let _tail = scratch.metrics.span("pipeline.eval_tail_ns");
    let incremental = match advance {
        LabelAdvance::Incremental { dirty } if prev.clustering.heads == clustering.heads => {
            Some(dirty)
        }
        _ => None,
    };
    let labels = &scratch.labels;
    let (nc_graph, report) = match incremental {
        Some(dirty) => {
            let nc_sets = adjacency::nc_from_labels_patched(
                clustering,
                labels,
                &prev.nc_graph.neighbor_sets,
                dirty,
            );
            let mut dirty_mask = vec![false; heads];
            for &slot in dirty {
                dirty_mask[slot] = true;
            }
            let nc_graph = VirtualGraph::from_labels_patched(
                g,
                clustering,
                nc_sets,
                labels,
                &prev.nc_graph,
                &dirty_mask,
            );
            let report = UpdateReport {
                dirty_heads: dirty.len(),
                head_count: heads,
                rebuilt: false,
            };
            (nc_graph, report)
        }
        None => {
            let nc_sets = adjacency::nc_from_labels(clustering, labels);
            let nc_graph = VirtualGraph::from_labels(g, clustering, nc_sets, labels);
            let report = UpdateReport {
                dirty_heads: heads,
                head_count: heads,
                rebuilt: true,
            };
            (nc_graph, report)
        }
    };
    let out = eval_from_nc(g, clustering, labels, nc_graph, &mut scratch.lmstga);
    (out, report)
}

/// Advances `scratch`'s label arena across a **head-set change**:
/// departed heads drop their rows ([`LabelStore::remove_head_row`]),
/// new heads sweep exactly one new row each
/// ([`LabelStore::add_head_row`]), and rows the edge `delta` dirtied
/// are re-swept — the full label arena is **never** rebuilt while the
/// scratch stays compatible (same bound and node count), which is what
/// makes a §3.3 head departure or arrival election cost `O(changed
/// rows)` instead of `O(h)` BFS sweeps.
///
/// `clustering` carries the **new** head set; `delta` is whatever edge
/// change has not yet been applied to the labels (pass an empty delta
/// when [`advance_labels`] already ran this step, as the churn engine
/// does on its patch path; the head-loss path passes the isolating
/// delta here directly). The resulting labels are bit-identical to a
/// full rebuild on `g` with the new head set (pinned by tests and by
/// the churn-engine equivalence suite).
///
/// Returns the dirty slots **in the new slot numbering** (added rows
/// plus delta-dirty survivors), or [`LabelAdvance::Rebuilt`] when the
/// scratch was incompatible or the delta flooded past
/// [`DIRTY_FRACTION_FALLBACK`].
pub fn advance_labels_headset<G: Adjacency + Sync>(
    g: &G,
    clustering: &Clustering,
    delta: &TopologyDelta,
    scratch: &mut EvalScratch,
) -> LabelAdvance {
    let bound = 2 * clustering.k + 1;
    let _advance = scratch.metrics.span("labels.advance_ns");
    // A layout switch empties the store; the compatibility test below
    // turns that into the full rebuild the switch requires anyway.
    scratch.ensure_layout(g.node_count(), clustering.heads.len());
    let compatible =
        scratch.labels.bound() == bound && scratch.labels.node_count() == g.node_count();
    if !compatible {
        scratch.metrics.inc("labels.rebuild_fallback");
        scratch
            .labels
            .rebuild_with(g, &clustering.heads, bound, scratch.par);
        return LabelAdvance::Rebuilt;
    }
    // 1. Edge dirt first, in the old slot numbering — skipping rows
    //    whose head is about to lose its row anyway.
    let dirty_old: Vec<usize> = scratch
        .labels
        .dirty_slots(delta)
        .into_iter()
        .filter(|&s| {
            clustering
                .heads
                .binary_search(&scratch.labels.heads()[s])
                .is_ok()
        })
        .collect();
    if dirty_old.len() as f64 > DIRTY_FRACTION_FALLBACK * scratch.labels.heads().len() as f64 {
        scratch.metrics.inc("labels.rebuild_fallback");
        scratch
            .labels
            .rebuild_with(g, &clustering.heads, bound, scratch.par);
        return LabelAdvance::Rebuilt;
    }
    let dirty_heads: Vec<NodeId> = dirty_old
        .iter()
        .map(|&s| scratch.labels.heads()[s])
        .collect();
    scratch
        .metrics
        .add("labels.rows_repaired", dirty_old.len() as u64);
    scratch.labels.apply_delta_with(g, &dirty_old, scratch.par);
    // 2. Row splices: drop departed heads' rows, sweep new heads'.
    let removed: Vec<NodeId> = scratch
        .labels
        .heads()
        .iter()
        .copied()
        .filter(|h| clustering.heads.binary_search(h).is_err())
        .collect();
    scratch
        .metrics
        .add("labels.head_rows_removed", removed.len() as u64);
    for h in removed {
        scratch.labels.remove_head_row(h);
    }
    let added: Vec<NodeId> = clustering
        .heads
        .iter()
        .copied()
        .filter(|&h| scratch.labels.slot(h).is_none())
        .collect();
    scratch
        .metrics
        .add("labels.head_rows_added", added.len() as u64);
    for &h in &added {
        scratch.labels.add_head_row(g, h);
    }
    debug_assert_eq!(scratch.labels.heads(), &clustering.heads[..]);
    // 3. The dirty set in the new numbering: surviving edge-dirty rows
    //    plus every added row.
    let mut dirty: Vec<usize> = dirty_heads
        .iter()
        .chain(added.iter())
        .filter_map(|&h| scratch.labels.slot(h))
        .collect();
    dirty.sort_unstable();
    dirty.dedup();
    LabelAdvance::Incremental { dirty }
}

/// Phase 2 after [`advance_labels_headset`]: derives the full
/// five-algorithm evaluation from labels already spliced to the new
/// head set. The NC relation and virtual graphs are re-derived in full
/// — a head-set change renumbers every slot, so the patched-row reuse
/// of [`update_all_after`] does not apply — but that stage lives in
/// head space and is cheap; the label arena itself was spliced, not
/// rebuilt, which is where the sweeps live.
///
/// # Panics
/// Panics if the scratch labels do not match `clustering`'s head set.
pub fn update_all_after_headset<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
    advance: &LabelAdvance,
    scratch: &mut EvalScratch,
) -> (EvaluationOutput, UpdateReport) {
    assert_eq!(
        scratch.labels.heads(),
        &clustering.heads[..],
        "labels were not advanced to the new head set"
    );
    scratch.metrics.inc("pipeline.update_all");
    let _tail = scratch.metrics.span("pipeline.eval_tail_ns");
    let labels = &scratch.labels;
    let nc_sets = adjacency::nc_from_labels(clustering, labels);
    let nc_graph = VirtualGraph::from_labels(g, clustering, nc_sets, labels);
    let report = UpdateReport {
        dirty_heads: advance.dirty_count(clustering.heads.len()),
        head_count: clustering.heads.len(),
        rebuilt: matches!(advance, LabelAdvance::Rebuilt),
    };
    let out = eval_from_nc(g, clustering, labels, nc_graph, &mut scratch.lmstga);
    (out, report)
}

/// Incrementally refreshes a previous [`run_all`] evaluation after a
/// [`TopologyDelta`] — the churn-engine core. `g` is the **post-delta**
/// graph; `scratch` must be the scratch that produced `prev` (its label
/// arena still describes the pre-delta graph); `clustering` must keep
/// `prev`'s head set (the maintenance layer in `adhoc-sim` falls back
/// to [`run_all_with`] itself when re-elections change it).
///
/// The refresh touches only what the delta can have changed:
///
/// 1. labels — one bounded BFS per **dirty** head
///    ([`LabelStore::apply_delta`]); clean rows are reused;
/// 2. NC relation — dirty rows re-derived, clean rows copied
///    ([`adjacency::nc_from_labels_patched`]);
/// 3. NC links — canonical paths re-walked only for pairs owned by a
///    dirty head, copied otherwise
///    ([`VirtualGraph::from_labels_patched`]);
/// 4. the head-space tail (AC restriction, selections, CDS) is shared
///    verbatim with [`run_all_with`] and is cheap.
///
/// When the dirty fraction crosses [`DIRTY_FRACTION_FALLBACK`], or the
/// head set / node count changed, it falls back to a full rebuild.
/// Either way the output is **bit-for-bit identical** to a from-scratch
/// [`run_all`] on `g` (pinned by the `update_all_equivalence`
/// proptest). Maintenance policies that must inspect labels between the
/// two phases call [`advance_labels`] / [`update_all_after`] directly.
pub fn update_all<G: Adjacency + Sync>(
    g: &G,
    clustering: &Clustering,
    delta: &TopologyDelta,
    prev: &EvaluationOutput,
    scratch: &mut EvalScratch,
) -> (EvaluationOutput, UpdateReport) {
    let advance = if prev.clustering.heads == clustering.heads {
        advance_labels(g, clustering, delta, scratch)
    } else {
        let bound = 2 * clustering.k + 1;
        scratch.ensure_layout(g.node_count(), clustering.heads.len());
        scratch
            .labels
            .rebuild_with(g, &clustering.heads, bound, scratch.par);
        LabelAdvance::Rebuilt
    };
    update_all_after(g, clustering, &advance, prev, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::gen;

    #[test]
    fn all_algorithms_produce_valid_cds() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(100);
        for k in 1..=4u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
            let cfg = PipelineConfig::new(k);
            for alg in Algorithm::ALL {
                let out = run(&net.graph, alg, &cfg);
                out.clustering.verify(&net.graph).unwrap();
                out.cds
                    .verify(&net.graph, k)
                    .unwrap_or_else(|e| panic!("{alg} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn paper_orderings_hold_in_expectation() {
        // Deterministic orderings that hold instance-by-instance:
        //   AC-Mesh <= NC-Mesh, AC-LMST <= mesh counterparts' links.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(200);
        for k in 2..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(120, 100.0, 6.0), &mut rng);
            let cfg = PipelineConfig::new(k);
            let clustering = crate::clustering::cluster(&net.graph, cfg.k, &LowestId, cfg.policy);
            let nc_mesh = run_on(&net.graph, Algorithm::NcMesh, &clustering);
            let ac_mesh = run_on(&net.graph, Algorithm::AcMesh, &clustering);
            let nc_lmst = run_on(&net.graph, Algorithm::NcLmst, &clustering);
            let ac_lmst = run_on(&net.graph, Algorithm::AcLmst, &clustering);
            let gmst = run_on(&net.graph, Algorithm::GMst, &clustering);
            assert!(ac_mesh.cds.size() <= nc_mesh.cds.size());
            assert!(nc_lmst.cds.size() <= nc_mesh.cds.size());
            assert!(ac_lmst.cds.size() <= ac_mesh.cds.size());
            // G-MST uses h-1 links, the global minimum number.
            assert!(gmst.selection.links_used.len() <= ac_lmst.selection.links_used.len());
        }
    }

    #[test]
    fn shared_clustering_across_algorithms() {
        let g = gen::path(9);
        let cfg = PipelineConfig::new(1);
        let a = run(&g, Algorithm::AcLmst, &cfg);
        let b = run(&g, Algorithm::NcMesh, &cfg);
        assert_eq!(a.clustering.heads, b.clustering.heads);
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::AcLmst.name(), "AC-LMST");
        assert_eq!(format!("{}", Algorithm::GMst), "G-MST");
        assert!(Algorithm::AcLmst.is_localized());
        assert!(!Algorithm::GMst.is_localized());
        assert_eq!(Algorithm::GMst.neighbor_rule(), None);
        assert_eq!(
            Algorithm::NcMesh.neighbor_rule(),
            Some(NeighborRule::All2kPlus1)
        );
        assert_eq!(Algorithm::ALL.len(), 5);
    }

    #[test]
    fn gmst_output_has_no_virtual_graph() {
        let g = gen::path(9);
        let out = run(&g, Algorithm::GMst, &PipelineConfig::new(1));
        assert!(out.virtual_graph.is_none());
        assert!(out.cds.verify(&g, 1).is_ok());
    }

    /// Field-by-field equality of two evaluations (EvaluationOutput
    /// deliberately has no PartialEq — this is the bit-for-bit check
    /// the delta-equivalence tests share).
    pub(crate) fn assert_evals_equal(a: &EvaluationOutput, b: &EvaluationOutput, ctx: &str) {
        assert_eq!(a.clustering.heads, b.clustering.heads, "{ctx}: heads");
        assert_eq!(a.clustering.head_of, b.clustering.head_of, "{ctx}: head_of");
        for (x, y, name) in [
            (&a.nc_graph, &b.nc_graph, "nc"),
            (&a.ac_graph, &b.ac_graph, "ac"),
        ] {
            assert_eq!(x.neighbor_sets, y.neighbor_sets, "{ctx}: {name} sets");
            assert_eq!(x.link_count(), y.link_count(), "{ctx}: {name} link count");
            for (l, r) in x.links().zip(y.links()) {
                assert_eq!((l.a, l.b), (r.a, r.b), "{ctx}: {name} pair");
                assert_eq!(l.path, r.path, "{ctx}: {name} path {:?}-{:?}", l.a, l.b);
            }
        }
        for alg in Algorithm::ALL {
            assert_eq!(a.of(alg).selection, b.of(alg).selection, "{ctx}: {alg}");
            assert_eq!(a.of(alg).cds, b.of(alg).cds, "{ctx}: {alg} cds");
        }
    }

    /// Chained deltas through `update_all` must reproduce a
    /// from-scratch `run_all` exactly — including the label arena.
    /// Extra edges are added and later removed (the edge set always
    /// stays a superset of the original connected graph, so the fixed
    /// clustering keeps covering it, as the maintenance layer
    /// guarantees in production).
    #[test]
    fn update_all_matches_run_all_across_delta_chain() {
        use adhoc_graph::graph::NodeId;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(404);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 6.0), &mut rng);
            let mut g = net.graph.clone();
            let clustering =
                crate::clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
            let mut scratch = EvalScratch::new();
            let mut prev = run_all_with(&g, &clustering, &mut scratch);
            let mut extras: Vec<(NodeId, NodeId)> = Vec::new();
            for step in 0..12 {
                let mut delta = adhoc_graph::delta::TopologyDelta::new();
                if step % 3 == 2 && !extras.is_empty() {
                    // Take back some previously added edges.
                    for _ in 0..rng.gen_range(1..=extras.len()) {
                        let (a, b) = extras.swap_remove(rng.gen_range(0..extras.len()));
                        g.remove_edge(a, b);
                        delta.push_removed(a, b);
                    }
                } else {
                    for _ in 0..rng.gen_range(1..5) {
                        let a = NodeId(rng.gen_range(0..90u32));
                        let b = NodeId(rng.gen_range(0..90u32));
                        if a != b && !g.has_edge(a, b) {
                            g.add_edge(a, b);
                            delta.push_added(a, b);
                            extras.push(if a < b { (a, b) } else { (b, a) });
                        }
                    }
                }
                delta.normalize();
                let (next, report) = update_all(&g, &clustering, &delta, &prev, &mut scratch);
                assert!(report.dirty_heads <= report.head_count);
                let fresh = run_all(&g, &clustering);
                assert_evals_equal(&next, &fresh, &format!("k={k} step={step}"));
                // The warm labels equal a cold rebuild too.
                let cold = adhoc_graph::labels::HeadLabels::build(
                    &g,
                    &clustering.heads,
                    2 * k + 1,
                );
                for slot in 0..clustering.heads.len() {
                    assert_eq!(scratch.labels().ball(slot), cold.ball(slot));
                }
                prev = next;
            }
        }
    }

    /// A delta that floods most balls must trip the fallback, and the
    /// fallback must still be exact.
    #[test]
    fn update_all_falls_back_on_heavy_deltas() {
        use adhoc_graph::graph::NodeId;
        let g0 = gen::path(20);
        let clustering = crate::clustering::cluster(&g0, 1, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let prev = run_all_with(&g0, &clustering, &mut scratch);
        // Add a hub touching everything: every head's 3-ball changes.
        let mut g = g0.clone();
        let mut delta = adhoc_graph::delta::TopologyDelta::new();
        for v in 1..20u32 {
            if !g.has_edge(NodeId(0), NodeId(v)) {
                g.add_edge(NodeId(0), NodeId(v));
                delta.push_added(NodeId(0), NodeId(v));
            }
        }
        delta.normalize();
        let (next, report) = update_all(&g, &clustering, &delta, &prev, &mut scratch);
        assert!(report.rebuilt);
        assert_eq!(report.dirty_fraction(), 1.0);
        assert_evals_equal(&next, &run_all(&g, &clustering), "fallback");
    }

    /// The auto heuristic picks sparse above the projected-bytes
    /// threshold and dense below — and an explicit mode overrides it.
    #[test]
    fn auto_mode_picks_layout_by_projected_arena() {
        // path(3200) with k=1 elects a head every other node: 1600
        // heads × 3200 nodes × 4 B ≈ 20.5 MB > the 16 MiB threshold.
        let big = gen::path(3200);
        let big_clustering =
            crate::clustering::cluster(&big, 1, &LowestId, MemberPolicy::IdBased);
        assert!(big_clustering.heads.len() * big.len() * 4 > 16 << 20);
        let mut auto = EvalScratch::new();
        assert_eq!(auto.mode(), LabelMode::Auto);
        run_all_with(&big, &big_clustering, &mut auto);
        assert!(auto.labels().is_sparse(), "large arena must go sparse");

        // A small graph through the same scratch switches back.
        let small = gen::path(40);
        let small_clustering =
            crate::clustering::cluster(&small, 1, &LowestId, MemberPolicy::IdBased);
        run_all_with(&small, &small_clustering, &mut auto);
        assert!(!auto.labels().is_sparse(), "small arena stays dense");

        // Explicit overrides ignore the projection.
        let mut forced_sparse = EvalScratch::with_mode(LabelMode::Sparse);
        run_all_with(&small, &small_clustering, &mut forced_sparse);
        assert!(forced_sparse.labels().is_sparse());
        let mut forced_dense = EvalScratch::with_mode(LabelMode::Dense);
        run_all_with(&big, &big_clustering, &mut forced_dense);
        assert!(!forced_dense.labels().is_sparse());
        assert!(
            forced_sparse.labels_memory_bytes() > 0
                && forced_dense.labels_memory_bytes() > 0
        );
    }

    /// A sparse-mode scratch drives the full engine — run_all and a
    /// delta chain — to the same outputs as a dense one.
    #[test]
    fn sparse_scratch_matches_dense_through_updates() {
        use adhoc_graph::graph::NodeId;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(505);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
        let mut g = net.graph.clone();
        let clustering = crate::clustering::cluster(&g, 2, &LowestId, MemberPolicy::IdBased);
        let mut dense = EvalScratch::with_mode(LabelMode::Dense);
        let mut sparse = EvalScratch::with_mode(LabelMode::Sparse);
        let mut prev_d = run_all_with(&g, &clustering, &mut dense);
        let mut prev_s = run_all_with(&g, &clustering, &mut sparse);
        assert_evals_equal(&prev_d, &prev_s, "cold");
        for step in 0..8 {
            let mut delta = adhoc_graph::delta::TopologyDelta::new();
            for _ in 0..rng.gen_range(1..4) {
                let a = NodeId(rng.gen_range(0..80u32));
                let b = NodeId(rng.gen_range(0..80u32));
                if a != b && !g.has_edge(a, b) {
                    g.add_edge(a, b);
                    delta.push_added(a, b);
                }
            }
            delta.normalize();
            let (next_d, rd) = update_all(&g, &clustering, &delta, &prev_d, &mut dense);
            let (next_s, rs) = update_all(&g, &clustering, &delta, &prev_s, &mut sparse);
            assert_eq!(rd, rs, "step {step}: reports");
            assert_evals_equal(&next_d, &next_s, &format!("step {step}"));
            prev_d = next_d;
            prev_s = next_s;
        }
    }

    /// Head promotions and demotions through the head-set advance must
    /// reproduce a from-scratch `run_all` exactly — without the label
    /// arena ever rebuilding (the incremental head-set contract).
    #[test]
    fn headset_advance_matches_run_all_without_rebuilds() {
        use adhoc_graph::graph::NodeId;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(707);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
        let mut g = net.graph.clone();
        for mode in [LabelMode::Dense, LabelMode::Sparse] {
            let base = crate::clustering::cluster(&g, 2, &LowestId, MemberPolicy::IdBased);
            let mut scratch = EvalScratch::with_mode(mode);
            run_all_with(&g, &base, &mut scratch);
            let rebuilds = scratch.labels().rebuild_count();

            // Promote two non-heads to heads, one at a time.
            let mut clustering = base.clone();
            let promoted: Vec<NodeId> = g
                .nodes()
                .filter(|&v| !base.is_head(v))
                .take(2)
                .collect();
            for &v in &promoted {
                let pos = clustering.heads.binary_search(&v).unwrap_err();
                clustering.heads.insert(pos, v);
                clustering.head_of[v.index()] = v;
                clustering.dist_to_head[v.index()] = 0;
                let advance = advance_labels_headset(
                    &g,
                    &clustering,
                    &adhoc_graph::delta::TopologyDelta::new(),
                    &mut scratch,
                );
                assert!(
                    matches!(&advance, LabelAdvance::Incremental { dirty } if dirty == &[pos]),
                    "promotion of {v:?} must dirty exactly its own row, got {advance:?}"
                );
                let (out, report) =
                    update_all_after_headset(&g, &clustering, &advance, &mut scratch);
                assert!(!report.rebuilt);
                assert_eq!(report.dirty_heads, 1);
                assert_evals_equal(&out, &run_all(&g, &clustering), &format!("{mode:?} +{v:?}"));
            }

            // Demote one of them again: a row removal dirties nothing.
            let v = promoted[0];
            let pos = clustering.heads.binary_search(&v).unwrap();
            clustering.heads.remove(pos);
            clustering.head_of[v.index()] = base.head_of[v.index()];
            clustering.dist_to_head[v.index()] = base.dist_to_head[v.index()];
            let advance = advance_labels_headset(
                &g,
                &clustering,
                &adhoc_graph::delta::TopologyDelta::new(),
                &mut scratch,
            );
            assert!(
                matches!(&advance, LabelAdvance::Incremental { dirty } if dirty.is_empty()),
                "demotion must dirty no rows, got {advance:?}"
            );
            let (out, report) = update_all_after_headset(&g, &clustering, &advance, &mut scratch);
            assert!(!report.rebuilt);
            assert_eq!(report.dirty_heads, 0);
            assert_evals_equal(&out, &run_all(&g, &clustering), &format!("{mode:?} -{v:?}"));

            assert_eq!(
                scratch.labels().rebuild_count(),
                rebuilds,
                "{mode:?}: head-set changes must splice, not rebuild"
            );

            // A head-set change combined with an edge delta in one
            // advance stays exact whichever path it takes (small
            // deltas can still flood many 2k+1 balls, legitimately
            // tripping the dirty-fraction fallback).
            let w = promoted[1];
            let wpos = clustering.heads.binary_search(&w).unwrap();
            clustering.heads.remove(wpos);
            clustering.head_of[w.index()] = base.head_of[w.index()];
            clustering.dist_to_head[w.index()] = base.dist_to_head[w.index()];
            let mut delta = adhoc_graph::delta::TopologyDelta::new();
            let (a, b) = (NodeId(0), NodeId(40));
            if !g.has_edge(a, b) {
                g.add_edge(a, b);
                delta.push_added(a, b);
            }
            delta.normalize();
            let advance = advance_labels_headset(&g, &clustering, &delta, &mut scratch);
            let (out, _) = update_all_after_headset(&g, &clustering, &advance, &mut scratch);
            assert_evals_equal(&out, &run_all(&g, &clustering), &format!("{mode:?} -{w:?}+edge"));
            // Undo the edge for the next mode's pass.
            if g.has_edge(a, b) {
                g.remove_edge(a, b);
            }
        }
    }

    /// An incompatible scratch (different bound) forces the head-set
    /// advance onto the rebuild path, which must still be exact.
    #[test]
    fn headset_advance_falls_back_on_incompatible_scratch() {
        let g = gen::grid(4, 5);
        let k1 = crate::clustering::cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let k2 = crate::clustering::cluster(&g, 2, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        run_all_with(&g, &k1, &mut scratch);
        let advance = advance_labels_headset(
            &g,
            &k2,
            &adhoc_graph::delta::TopologyDelta::new(),
            &mut scratch,
        );
        assert_eq!(advance, LabelAdvance::Rebuilt, "bound changed");
        let (out, report) = update_all_after_headset(&g, &k2, &advance, &mut scratch);
        assert!(report.rebuilt);
        assert_evals_equal(&out, &run_all(&g, &k2), "rebuild fallback");
    }

    /// An empty delta is a no-op refresh with zero dirty heads.
    #[test]
    fn update_all_empty_delta_is_clean() {
        let g = gen::grid(4, 5);
        let clustering = crate::clustering::cluster(&g, 2, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let prev = run_all_with(&g, &clustering, &mut scratch);
        let delta = adhoc_graph::delta::TopologyDelta::new();
        let (next, report) = update_all(&g, &clustering, &delta, &prev, &mut scratch);
        assert_eq!(report.dirty_heads, 0);
        assert!(!report.rebuilt);
        assert_eq!(report.dirty_fraction(), 0.0);
        assert_evals_equal(&next, &prev, "no-op");
    }
}
