//! End-to-end pipeline: clustering → neighbor selection → gateways →
//! CDS, packaged as the five algorithms of the paper's evaluation.
//!
//! Two entry points exist for the per-algorithm phases:
//!
//! * [`run_on`] — evaluate **one** algorithm on a shared clustering
//!   (the original API, kept as a thin compatible wrapper).
//! * [`run_all`] — the single-sweep evaluation engine: evaluate **all
//!   five** algorithms from one [`HeadLabels`] build (one BFS per
//!   clusterhead) and one NC virtual graph; the AC graph is derived by
//!   filtering NC links against the adjacency relation (A-NCR ⊆ NC,
//!   Theorem 1), and G-MST reads the same unbounded labels. This is
//!   what the Monte-Carlo harness runs — it removes the ~5× redundant
//!   graph traversal per replicate that calling [`run_on`] per
//!   algorithm costs, while producing bit-identical output (enforced
//!   by the `run_all_equivalence` proptest).

use crate::adjacency::{self, NeighborRule};
use crate::cds::Cds;
use crate::clustering::{self, Clustering, MemberPolicy};
use crate::gateway::{self, GatewaySelection};
use crate::priority::LowestId;
use crate::virtual_graph::VirtualGraph;
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::labels::HeadLabels;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The five gateway-construction algorithms compared in §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Mesh over all clusterheads within `2k+1` hops.
    NcMesh,
    /// Mesh over adjacent clusterheads (A-NCR).
    AcMesh,
    /// LMSTGA over all clusterheads within `2k+1` hops.
    NcLmst,
    /// LMSTGA over adjacent clusterheads — the paper's AC-LMST.
    AcLmst,
    /// Centralized global-MST lower bound.
    GMst,
}

impl Algorithm {
    /// All five algorithms, in the paper's legend order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::NcMesh,
        Algorithm::AcMesh,
        Algorithm::AcLmst,
        Algorithm::NcLmst,
        Algorithm::GMst,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::NcMesh => "NC-Mesh",
            Algorithm::AcMesh => "AC-Mesh",
            Algorithm::NcLmst => "NC-LMST",
            Algorithm::AcLmst => "AC-LMST",
            Algorithm::GMst => "G-MST",
        }
    }

    /// The neighbor clusterhead rule the algorithm uses (`None` for
    /// G-MST, which is global).
    pub fn neighbor_rule(self) -> Option<NeighborRule> {
        match self {
            Algorithm::NcMesh | Algorithm::NcLmst => Some(NeighborRule::All2kPlus1),
            Algorithm::AcMesh | Algorithm::AcLmst => Some(NeighborRule::Adjacent),
            Algorithm::GMst => None,
        }
    }

    /// Whether the algorithm is localized (`2k+1`-hop information
    /// only).
    pub fn is_localized(self) -> bool {
        self != Algorithm::GMst
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pipeline parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// The clustering radius `k` (paper: 1–4).
    pub k: u32,
    /// Member affiliation policy (paper figures use ID-based).
    pub policy: MemberPolicy,
}

impl PipelineConfig {
    /// Config with the paper's defaults (ID-based members).
    pub fn new(k: u32) -> Self {
        PipelineConfig {
            k,
            policy: MemberPolicy::IdBased,
        }
    }
}

/// Everything the pipeline produced.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// The k-hop clustering.
    pub clustering: Clustering,
    /// The virtual graph (absent for G-MST, which skips the localized
    /// relation).
    pub virtual_graph: Option<VirtualGraph>,
    /// The realized links and marked gateways.
    pub selection: GatewaySelection,
    /// The final k-hop CDS.
    pub cds: Cds,
}

/// Runs lowest-ID clustering followed by `algorithm`'s neighbor and
/// gateway phases.
pub fn run<G: Adjacency>(g: &G, algorithm: Algorithm, cfg: &PipelineConfig) -> PipelineOutput {
    let clustering = clustering::cluster(g, cfg.k, &LowestId, cfg.policy);
    run_on(g, algorithm, &clustering)
}

/// Runs only the neighbor and gateway phases on an existing clustering
/// (so one clustering can be shared across all five algorithms, as the
/// paper's comparisons require).
pub fn run_on<G: Adjacency>(
    g: &G,
    algorithm: Algorithm,
    clustering: &Clustering,
) -> PipelineOutput {
    let (virtual_graph, selection) = match algorithm {
        Algorithm::GMst => (None, gateway::gmst(g, clustering)),
        _ => {
            let rule = algorithm.neighbor_rule().expect("localized algorithm");
            let vg = VirtualGraph::build(g, clustering, rule);
            let sel = match algorithm {
                Algorithm::NcMesh | Algorithm::AcMesh => gateway::mesh(&vg, clustering),
                Algorithm::NcLmst | Algorithm::AcLmst => gateway::lmstga(&vg, clustering),
                Algorithm::GMst => unreachable!(),
            };
            (Some(vg), sel)
        }
    };
    let cds = Cds::assemble(clustering, &selection);
    PipelineOutput {
        clustering: clustering.clone(),
        virtual_graph,
        selection,
        cds,
    }
}

/// Reusable per-worker state of the evaluation engine: the head-label
/// arena persists across replicates within a thread, so a warm worker
/// pays no per-replicate allocation for the label sweep.
#[derive(Debug, Default)]
pub struct EvalScratch {
    labels: HeadLabels,
    lmstga: gateway::LmstgaScratch,
}

impl EvalScratch {
    /// Fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        EvalScratch::default()
    }
}

/// One algorithm's share of an [`EvaluationOutput`].
#[derive(Clone, Debug)]
pub struct AlgorithmOutput {
    /// The realized links and marked gateways.
    pub selection: GatewaySelection,
    /// The final k-hop CDS.
    pub cds: Cds,
}

/// Everything [`run_all`] produced: all five algorithms evaluated from
/// one shared label sweep.
#[derive(Clone, Debug)]
pub struct EvaluationOutput {
    /// The shared k-hop clustering.
    pub clustering: Clustering,
    /// The NC (`2k+1`-hop) virtual graph, shared by NC-Mesh / NC-LMST.
    pub nc_graph: VirtualGraph,
    /// The AC (A-NCR) virtual graph — the NC graph restricted to
    /// adjacent pairs — shared by AC-Mesh / AC-LMST.
    pub ac_graph: VirtualGraph,
    /// Per-algorithm selections and CDSs (all five present).
    pub outputs: BTreeMap<Algorithm, AlgorithmOutput>,
}

impl EvaluationOutput {
    /// The output of `algorithm`.
    ///
    /// # Panics
    /// Never in practice: [`run_all`] populates all five algorithms.
    pub fn of(&self, algorithm: Algorithm) -> &AlgorithmOutput {
        &self.outputs[&algorithm]
    }
}

/// Evaluates **all five** algorithms on a shared clustering with one
/// head-label sweep (see the module docs for the dataflow). Equivalent
/// to — but much faster than — calling [`run_on`] once per algorithm.
pub fn run_all<G: Adjacency>(g: &G, clustering: &Clustering) -> EvaluationOutput {
    run_all_with(g, clustering, &mut EvalScratch::new())
}

/// As [`run_all`], reusing `scratch` across calls (the Monte-Carlo
/// harness keeps one per worker thread).
pub fn run_all_with<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
    scratch: &mut EvalScratch,
) -> EvaluationOutput {
    // One BFS per head, bounded to the paper's 2k+1 locality radius.
    // These labels serve the NC relation, both virtual graphs, and —
    // via the Theorem-1 bottleneck argument in
    // [`gateway::gmst_via_nc`] — even the global MST baseline, so no
    // unbounded traversal happens on the hot path at all.
    let bound = 2 * clustering.k + 1;
    scratch.labels.rebuild(g, &clustering.heads, bound);
    let labels = &scratch.labels;

    let nc_sets = adjacency::nc_from_labels(clustering, labels);
    let ac_sets = adjacency::neighbor_clusterheads(g, clustering, NeighborRule::Adjacent);
    #[cfg(debug_assertions)]
    for (u, v) in ac_sets.pairs() {
        let d = labels.head_dist(u, v);
        debug_assert!(
            d > clustering.k && d <= 2 * clustering.k + 1,
            "A-NCR pair {u:?},{v:?} at distance {d} contradicts Theorem 1 (k={})",
            clustering.k
        );
    }

    let nc_graph = VirtualGraph::from_labels(g, clustering, nc_sets, labels);
    // On dense deployments every pair of nearby clusters often touches,
    // making the AC relation literally equal to NC — then the AC graph
    // and both AC selections are the NC ones and need no recomputation.
    let ac_is_nc = ac_sets == nc_graph.neighbor_sets;
    let ac_graph = if ac_is_nc {
        nc_graph.clone()
    } else {
        nc_graph.restricted_to(ac_sets)
    };

    let nc_mesh = gateway::mesh(&nc_graph, clustering);
    let ac_mesh = if ac_is_nc {
        nc_mesh.clone()
    } else {
        gateway::mesh(&ac_graph, clustering)
    };
    let nc_lmst = gateway::lmstga_with(&mut scratch.lmstga, &nc_graph, clustering);
    let ac_lmst = if ac_is_nc {
        nc_lmst.clone()
    } else {
        gateway::lmstga_with(&mut scratch.lmstga, &ac_graph, clustering)
    };
    let g_mst = gateway::gmst_via_nc(g, &nc_graph, clustering);

    let mut outputs = BTreeMap::new();
    for (alg, selection) in [
        (Algorithm::NcMesh, nc_mesh),
        (Algorithm::AcMesh, ac_mesh),
        (Algorithm::NcLmst, nc_lmst),
        (Algorithm::AcLmst, ac_lmst),
        (Algorithm::GMst, g_mst),
    ] {
        let cds = Cds::assemble(clustering, &selection);
        outputs.insert(alg, AlgorithmOutput { selection, cds });
    }
    EvaluationOutput {
        clustering: clustering.clone(),
        nc_graph,
        ac_graph,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::gen;

    #[test]
    fn all_algorithms_produce_valid_cds() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(100);
        for k in 1..=4u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
            let cfg = PipelineConfig::new(k);
            for alg in Algorithm::ALL {
                let out = run(&net.graph, alg, &cfg);
                out.clustering.verify(&net.graph).unwrap();
                out.cds
                    .verify(&net.graph, k)
                    .unwrap_or_else(|e| panic!("{alg} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn paper_orderings_hold_in_expectation() {
        // Deterministic orderings that hold instance-by-instance:
        //   AC-Mesh <= NC-Mesh, AC-LMST <= mesh counterparts' links.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(200);
        for k in 2..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(120, 100.0, 6.0), &mut rng);
            let cfg = PipelineConfig::new(k);
            let clustering = crate::clustering::cluster(&net.graph, cfg.k, &LowestId, cfg.policy);
            let nc_mesh = run_on(&net.graph, Algorithm::NcMesh, &clustering);
            let ac_mesh = run_on(&net.graph, Algorithm::AcMesh, &clustering);
            let nc_lmst = run_on(&net.graph, Algorithm::NcLmst, &clustering);
            let ac_lmst = run_on(&net.graph, Algorithm::AcLmst, &clustering);
            let gmst = run_on(&net.graph, Algorithm::GMst, &clustering);
            assert!(ac_mesh.cds.size() <= nc_mesh.cds.size());
            assert!(nc_lmst.cds.size() <= nc_mesh.cds.size());
            assert!(ac_lmst.cds.size() <= ac_mesh.cds.size());
            // G-MST uses h-1 links, the global minimum number.
            assert!(gmst.selection.links_used.len() <= ac_lmst.selection.links_used.len());
        }
    }

    #[test]
    fn shared_clustering_across_algorithms() {
        let g = gen::path(9);
        let cfg = PipelineConfig::new(1);
        let a = run(&g, Algorithm::AcLmst, &cfg);
        let b = run(&g, Algorithm::NcMesh, &cfg);
        assert_eq!(a.clustering.heads, b.clustering.heads);
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::AcLmst.name(), "AC-LMST");
        assert_eq!(format!("{}", Algorithm::GMst), "G-MST");
        assert!(Algorithm::AcLmst.is_localized());
        assert!(!Algorithm::GMst.is_localized());
        assert_eq!(Algorithm::GMst.neighbor_rule(), None);
        assert_eq!(
            Algorithm::NcMesh.neighbor_rule(),
            Some(NeighborRule::All2kPlus1)
        );
        assert_eq!(Algorithm::ALL.len(), 5);
    }

    #[test]
    fn gmst_output_has_no_virtual_graph() {
        let g = gen::path(9);
        let out = run(&g, Algorithm::GMst, &PipelineConfig::new(1));
        assert!(out.virtual_graph.is_none());
        assert!(out.cds.verify(&g, 1).is_ok());
    }
}
