//! Connected k-hop clustering in ad hoc networks.
//!
//! This crate implements the primary contribution of *"Connected k-Hop
//! Clustering in Ad Hoc Networks"* (Shuhui Yang, Jie Wu, Jiannong Cao,
//! ICPP 2005): forming non-overlapping k-hop clusters with a
//! generalized lowest-ID algorithm and then connecting the clusterheads
//! through as few gateway nodes as possible, using only localized
//! (at most `2k+1`-hop) information.
//!
//! The pipeline has three stages:
//!
//! 1. **Clustering** ([`clustering`]) — iterative k-hop lowest-ID (or
//!    any other [`priority`]) clusterhead election with ID-, distance-,
//!    or size-based member affiliation. Clusterheads form a k-hop
//!    dominating set that is also k-hop independent.
//! 2. **Neighbor clusterhead selection** ([`adjacency`]) — either the
//!    naive `NC` rule (all clusterheads within `2k+1` hops) or the
//!    paper's **A-NCR** rule (`AC`): only *adjacent* clusterheads, i.e.
//!    heads of clusters that share an edge of `G` (Definition 2 /
//!    Theorem 1 guarantee the adjacent cluster graph `G''` is
//!    connected).
//! 3. **Gateway selection** ([`gateway`]) — `Mesh` (one shortest path
//!    per selected neighbor clusterhead), **LMSTGA** (the local
//!    minimum spanning tree rule applied to *virtual links*), and the
//!    centralized `G-MST` lower bound.
//!
//! The five algorithm combinations the paper evaluates — `NC-Mesh`,
//! `AC-Mesh`, `NC-LMST`, `AC-LMST`, `G-MST` — are exposed through
//! [`pipeline::Algorithm`]; [`pipeline::run_all`] evaluates all five
//! from a single per-head label sweep (the Monte-Carlo engine), while
//! [`pipeline::run_on`] runs one algorithm at a time. For small
//! instances, [`exact`] provides branch-and-bound minimum k-hop DS/CDS
//! solvers so all of them can be measured as true approximation
//! ratios.
//!
//! # Quickstart
//!
//! ```
//! use adhoc_cluster::pipeline::{self, Algorithm, PipelineConfig};
//! use adhoc_graph::gen::{self, GeometricConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let net = gen::geometric(&GeometricConfig::new(100, 100.0, 6.0), &mut rng);
//! let cfg = PipelineConfig::new(2); // k = 2
//! let out = pipeline::run(&net.graph, Algorithm::AcLmst, &cfg);
//! assert!(out.cds.verify(&net.graph, 2).is_ok());
//! println!("heads: {}, gateways: {}, CDS: {}",
//!          out.clustering.head_count(),
//!          out.cds.gateways.len(),
//!          out.cds.size());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod analysis;
pub mod border;
pub mod cds;
pub mod clustering;
pub mod core_algorithm;
pub mod exact;
pub mod gateway;
pub mod hierarchy;
pub mod maxmin;
pub mod pipeline;
pub mod priority;
pub mod routing;
pub mod virtual_graph;
pub mod wulou;

pub use cds::Cds;
pub use clustering::{Clustering, MemberPolicy};
pub use pipeline::{Algorithm, PipelineConfig};
