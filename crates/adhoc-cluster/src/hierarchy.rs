//! High-level (recursive) clustering.
//!
//! §2: "High level clustering, clustering applied recursively over
//! clusterheads, is also feasible and effective in even larger
//! networks." This module builds that hierarchy: level 0 clusters the
//! physical network; level `i+1` clusters the *adjacent cluster graph*
//! `G''` of level `i` (whose connectivity Theorem 1 guarantees, so
//! each level's input is again a connected graph and the recursion is
//! well founded).

use crate::adjacency::{self, NeighborRule};
use crate::clustering::{self, Clustering, MemberPolicy};
use crate::priority::LowestId;
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::graph::{Graph, NodeId};
use std::collections::BTreeMap;

/// One level of the hierarchy.
#[derive(Clone, Debug)]
pub struct Level {
    /// The graph this level clustered: level 0 is the physical
    /// network's size; deeper levels are adjacent-cluster graphs over
    /// the previous level's heads (re-indexed densely).
    pub graph: Graph,
    /// The clustering of that graph.
    pub clustering: Clustering,
    /// Maps this level's dense node IDs back to the previous level's
    /// head IDs (for level 0, identity).
    pub to_parent_id: Vec<NodeId>,
}

/// A multi-level clustering hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Levels bottom-up; `levels[0]` clusters the physical network.
    pub levels: Vec<Level>,
}

impl Hierarchy {
    /// Builds a hierarchy over `g` with one entry of `ks` per level
    /// (stops early if a level collapses to a single head).
    ///
    /// # Panics
    /// Panics if `ks` is empty or `g` is empty.
    pub fn build(g: &Graph, ks: &[u32], policy: MemberPolicy) -> Self {
        assert!(!ks.is_empty(), "need at least one level");
        assert!(!g.is_empty(), "graph must be non-empty");
        let mut levels = Vec::new();
        let mut current = g.clone();
        let mut to_parent: Vec<NodeId> = g.nodes().collect();
        for (i, &k) in ks.iter().enumerate() {
            let clustering = clustering::cluster(&current, k, &LowestId, policy);
            let heads = clustering.heads.clone();
            let next = adjacent_head_graph(&current, &clustering);
            levels.push(Level {
                graph: current,
                clustering,
                to_parent_id: to_parent,
            });
            if heads.len() <= 1 || i + 1 == ks.len() {
                break;
            }
            to_parent = heads;
            current = next;
        }
        Hierarchy { levels }
    }

    /// Number of levels actually built.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Head counts per level, bottom-up.
    pub fn head_counts(&self) -> Vec<usize> {
        self.levels
            .iter()
            .map(|l| l.clustering.head_count())
            .collect()
    }

    /// Resolves a level-`level` head (dense ID) to its physical node
    /// ID by walking the mapping chain down to level 0.
    pub fn physical_id(&self, level: usize, id: NodeId) -> NodeId {
        let mut cur = id;
        let mut lvl = level;
        loop {
            cur = self.levels[lvl].to_parent_id[cur.index()];
            if lvl == 0 {
                return cur;
            }
            lvl -= 1;
        }
    }

    /// The top level's clusterheads as physical node IDs.
    pub fn top_heads(&self) -> Vec<NodeId> {
        let top = self.levels.len() - 1;
        self.levels[top]
            .clustering
            .heads
            .iter()
            .map(|&h| self.physical_id(top, h))
            .collect()
    }
}

/// The adjacent-cluster graph `G''` of a clustering, re-indexed so
/// head `clustering.heads[i]` becomes node `i` (dense IDs keep the
/// relative ID order, preserving lowest-ID semantics at upper levels).
pub fn adjacent_head_graph<G: Adjacency>(g: &G, clustering: &Clustering) -> Graph {
    let sets = adjacency::neighbor_clusterheads(g, clustering, NeighborRule::Adjacent);
    let index: BTreeMap<NodeId, u32> = clustering
        .heads
        .iter()
        .enumerate()
        .map(|(i, &h)| (h, i as u32))
        .collect();
    let mut out = Graph::new(clustering.heads.len());
    for (u, v) in sets.pairs() {
        out.add_edge(NodeId(index[&u]), NodeId(index[&v]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::{connectivity, gen};

    #[test]
    fn two_level_hierarchy_on_path() {
        let g = gen::path(27);
        let h = Hierarchy::build(&g, &[1, 1], MemberPolicy::IdBased);
        assert_eq!(h.depth(), 2);
        let counts = h.head_counts();
        assert!(counts[1] < counts[0], "levels must shrink: {counts:?}");
        // Level-1 heads resolve to physical nodes that are level-0
        // heads.
        for &top in &h.top_heads() {
            assert!(h.levels[0].clustering.is_head(top));
        }
    }

    #[test]
    fn hierarchy_levels_stay_connected() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let net = gen::geometric(&gen::GeometricConfig::new(150, 100.0, 6.0), &mut rng);
        let h = Hierarchy::build(&net.graph, &[1, 1, 1], MemberPolicy::IdBased);
        for level in &h.levels {
            // Theorem 1, applied at every level.
            assert!(connectivity::is_connected(&level.graph));
            level.clustering.verify(&level.graph).unwrap();
        }
        let counts = h.head_counts();
        for w in counts.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn collapse_stops_early() {
        let g = gen::star(10);
        let h = Hierarchy::build(&g, &[1, 1, 1, 1], MemberPolicy::IdBased);
        assert_eq!(h.depth(), 1, "one cluster at level 0 ends the recursion");
        assert_eq!(h.head_counts(), vec![1]);
    }

    #[test]
    fn physical_id_identity_at_level_zero() {
        let g = gen::path(9);
        let h = Hierarchy::build(&g, &[1], MemberPolicy::IdBased);
        assert_eq!(h.physical_id(0, NodeId(4)), NodeId(4));
    }

    #[test]
    fn adjacent_head_graph_matches_relation() {
        let g = gen::path(9);
        let c = clustering::cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let gpp = adjacent_head_graph(&g, &c);
        // Heads 0,2,4,6,8 -> chain of 5 dense nodes.
        assert_eq!(gpp.len(), 5);
        assert_eq!(gpp.edge_count(), 4);
        assert!(gpp.has_edge(NodeId(0), NodeId(1)));
        assert!(!gpp.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn mixed_k_per_level() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let net = gen::geometric(&gen::GeometricConfig::new(200, 100.0, 8.0), &mut rng);
        let h = Hierarchy::build(&net.graph, &[2, 1], MemberPolicy::DistanceBased);
        assert!(h.depth() >= 1);
        if h.depth() == 2 {
            assert!(h.head_counts()[1] <= h.head_counts()[0]);
        }
    }
}
