//! Wu and Lou's "2.5 hops coverage" rule — the k = 1 predecessor that
//! A-NCR extends and generalizes (§2, §3.1, Figure 2, reference \[17\]).
//!
//! For 1-hop clustering, each clusterhead covers (and connects to):
//!
//! * every clusterhead within **2 hops**, and
//! * every clusterhead exactly **3 hops** away that has a *member*
//!   within the clusterhead's 2-hop neighborhood.
//!
//! The relation is directional (Figure 2(c) shows unidirectional
//! connections like "2 → 4" without "4 → 2" being needed), and it is a
//! *supergraph* of the adjacent cluster graph `G''`: if clusters
//! `C1`/`C2` share an edge `w1–w2`, then `d(u, w2) ≤ 2` for head `u`
//! of `C1`, so `v` (head of `C2`, at distance 2 or 3) is covered by
//! `u`. Hence 2.5-hops coverage also guarantees connectivity — but
//! keeps redundant links (the paper's Figure 2(d) shows A-NCR removing
//! them), which is exactly the gap A-NCR closes.

use crate::adjacency::{self, NeighborRule};
use crate::clustering::Clustering;
use crate::gateway::GatewaySelection;
use adhoc_graph::bfs::{self, Adjacency, BfsScratch, UNREACHED};
use adhoc_graph::graph::NodeId;
use std::collections::BTreeMap;

/// The directed 2.5-hops coverage relation.
#[derive(Clone, Debug, Default)]
pub struct Coverage {
    out: BTreeMap<NodeId, Vec<NodeId>>,
}

impl Coverage {
    /// Heads covered by `head` (sorted).
    ///
    /// # Panics
    /// Panics if `head` is not a clusterhead.
    pub fn covered_by(&self, head: NodeId) -> &[NodeId] {
        self.out
            .get(&head)
            .unwrap_or_else(|| panic!("{head:?} is not a clusterhead"))
    }

    /// All directed pairs `(u, v)` with `v` covered by `u`.
    pub fn directed_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.out
            .iter()
            .flat_map(|(&u, vs)| vs.iter().map(move |&v| (u, v)))
            .collect()
    }

    /// The undirected support of the relation: pairs `(a, b)`, `a < b`,
    /// where at least one direction covers the other.
    pub fn undirected_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs: Vec<(NodeId, NodeId)> = self
            .directed_pairs()
            .into_iter()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

/// Computes the 2.5-hops coverage of every clusterhead.
///
/// # Panics
/// Panics unless `clustering.k == 1` — the rule is defined for 1-hop
/// clustering only; A-NCR is its k-hop generalization.
pub fn coverage25<G: Adjacency>(g: &G, clustering: &Clustering) -> Coverage {
    assert_eq!(
        clustering.k, 1,
        "2.5-hops coverage is a k = 1 rule; use A-NCR for general k"
    );
    let n = g.node_count();
    let mut scratch = BfsScratch::new(n);
    let mut out = BTreeMap::new();
    for &u in &clustering.heads {
        // u's 2-hop neighborhood, with distances; 3-hop shell too.
        scratch.run(g, u, 3);
        let mut covered = Vec::new();
        for &v in &clustering.heads {
            if v == u {
                continue;
            }
            match scratch.dist(v) {
                UNREACHED => {}
                d if d <= 2 => covered.push(v),
                3 => {
                    // Covered iff some member of v's cluster is within
                    // u's 2-hop neighborhood.
                    let has_near_member = scratch
                        .visited()
                        .iter()
                        .any(|&w| scratch.dist(w) <= 2 && clustering.head_of(w) == v && w != v);
                    if has_near_member {
                        covered.push(v);
                    }
                }
                _ => {}
            }
        }
        covered.sort_unstable();
        out.insert(u, covered);
    }
    Coverage { out }
}

/// Mesh gateway selection over the 2.5-hops coverage relation: one
/// canonical shortest path per undirected covered pair (the
/// construction the paper's Figure 2(c) illustrates, modulo their
/// greedy path sharing).
pub fn mesh25<G: Adjacency>(g: &G, clustering: &Clustering) -> GatewaySelection {
    let cov = coverage25(g, clustering);
    let mut gateways = Vec::new();
    let mut links_used = Vec::new();
    let mut scratch = BfsScratch::new(g.node_count());
    for (a, b) in cov.undirected_pairs() {
        scratch.run(g, b, 3);
        let path = bfs::lexico_path_from_labels(g, a, b, &scratch)
            .expect("covered heads are within 3 hops");
        links_used.push((a, b));
        for &w in adhoc_graph::paths::interior(&path) {
            if !clustering.is_head(w) {
                gateways.push(w);
            }
        }
    }
    gateways.sort_unstable();
    gateways.dedup();
    GatewaySelection {
        gateways,
        links_used,
    }
}

/// Checks the containment chain of §3.1 on a concrete instance:
/// `G'' (A-NCR) ⊆ 2.5-hops coverage ⊆ NC (3 hops)`, as undirected
/// pair sets. Returns the three pair counts `(ac, wu_lou, nc)`.
pub fn containment_chain<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
) -> Result<(usize, usize, usize), String> {
    let ac = adjacency::neighbor_clusterheads(g, clustering, NeighborRule::Adjacent);
    let nc = adjacency::neighbor_clusterheads(g, clustering, NeighborRule::All2kPlus1);
    let cov = coverage25(g, clustering);
    let wl = cov.undirected_pairs();
    for pair in ac.pairs() {
        if !wl.contains(&pair) {
            return Err(format!("adjacent pair {pair:?} missing from 2.5-hops"));
        }
    }
    let nc_pairs = nc.pairs();
    for pair in &wl {
        if !nc_pairs.contains(pair) {
            return Err(format!("2.5-hops pair {pair:?} outside 3 hops"));
        }
    }
    Ok((ac.pair_count(), wl.len(), nc_pairs.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cds::Cds;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use adhoc_graph::graph::Graph;

    #[test]
    fn two_hop_heads_always_covered() {
        let g = gen::path(9); // heads 0,2,4,6,8 at k=1, consecutive 2 apart
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let cov = coverage25(&g, &c);
        assert_eq!(cov.covered_by(NodeId(4)), &[NodeId(2), NodeId(6)]);
        assert_eq!(cov.undirected_pairs().len(), 4);
    }

    #[test]
    fn three_hop_head_needs_member_in_two_hops() {
        // Heads u=0 and v=1 at distance 3 via 0-2-3-1 where 2 ∈ C0,
        // 3 ∈ C1: v's member 3 is 2 hops from u -> covered.
        let g = Graph::from_edges(4, &[(0, 2), (2, 3), (3, 1)]);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(1)]);
        let cov = coverage25(&g, &c);
        assert_eq!(cov.covered_by(NodeId(0)), &[NodeId(1)]);
        assert_eq!(cov.covered_by(NodeId(1)), &[NodeId(0)]);
    }

    #[test]
    fn three_hop_head_without_near_member_uncovered_one_direction() {
        // Figure 2's point: coverage can be asymmetric. Build heads u,v
        // at distance 3 where the connecting interior belongs to a
        // *third* cluster on u's side:
        //   u=0 with member 4; w=2 head of {2,5}; v=1 with member 6.
        //   path 0-4, 4-5, 5-6, 6-1 and 5 ∈ C2 (2-5 edge).
        // d(0,1) = 4 -> beyond 3, not covered at all. Shrink: 0-4,4-6,6-1
        // with 4 ∈ C0? 4 adjacent 0: member of 0. 6: neighbor of 4 and 1;
        // 6 joins 1 (IdBased hears 0? d(6,0)=2 no). So 6 ∈ C1.
        // d(0,1)=3; does 1 have a member within 2 of 0? 6 at d(0,6)=2 ✓
        // covered. Does 0 have a member within 2 of 1? 4 at d(1,4)=2 ✓.
        // Symmetric again. True asymmetry needs the separating cluster
        // of Figure 2; replicate its shape:
        //   heads: 1, 2, 3, 4 in paper. We test machine-checked
        //   asymmetry existence over random graphs instead.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        let mut saw_asymmetry = false;
        for _ in 0..10 {
            let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
            let cov = coverage25(&net.graph, &c);
            let directed = cov.directed_pairs();
            for &(u, v) in &directed {
                if !directed.contains(&(v, u)) {
                    saw_asymmetry = true;
                }
            }
        }
        assert!(
            saw_asymmetry,
            "2.5-hops coverage should show unidirectional links somewhere"
        );
    }

    #[test]
    fn containment_chain_holds_randomized() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
            let (ac, wl, nc) = containment_chain(&net.graph, &c).unwrap();
            assert!(ac <= wl, "A-NCR ({ac}) must be within 2.5-hops ({wl})");
            assert!(wl <= nc, "2.5-hops ({wl}) must be within NC ({nc})");
        }
    }

    #[test]
    fn mesh25_produces_valid_cds() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 6.0), &mut rng);
        let c = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
        let sel = mesh25(&net.graph, &c);
        let cds = Cds::assemble(&c, &sel);
        cds.verify(&net.graph, 1).unwrap();
        // And it realizes at least the adjacent pairs.
        let ac = adjacency::neighbor_clusterheads(&net.graph, &c, NeighborRule::Adjacent);
        assert!(sel.links_used.len() >= ac.pair_count());
    }

    #[test]
    #[should_panic(expected = "k = 1")]
    fn k2_is_rejected() {
        let g = gen::path(9);
        let c = cluster(&g, 2, &LowestId, MemberPolicy::IdBased);
        coverage25(&g, &c);
    }
}
