//! The concurrent route-serving engine: batched queries over a shared
//! compiled [`RoutePlan`].
//!
//! A [`RoutePlan`] is immutable at serve time, so any number of
//! workers can read it concurrently; each worker reuses one walk
//! buffer (its scratch) and writes into a disjoint slice of the batch
//! output. Results are **deterministic and bit-identical for every
//! worker count** — the batch is split into contiguous chunks, each
//! pair's answer lands at its own index, and the batch checksum folds
//! the per-pair walk checksums in pair order after the join.

use crate::routing::plan::RoutePlan;
use adhoc_graph::graph::NodeId;
use adhoc_graph::obs::{Counter, Hist, Metrics};
use adhoc_graph::par;
use std::time::Instant;

/// Hop marker for pairs the backbone cannot connect.
pub const UNROUTABLE: u32 = u32::MAX;

/// One batch's answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchResult {
    /// Per pair: hop count of the served walk ([`UNROUTABLE`] when no
    /// route exists).
    pub hops: Vec<u32>,
    /// Per pair: checksum of the full walk node sequence (0 for
    /// unroutable pairs).
    pub checksums: Vec<u64>,
    /// Order-sensitive fold of `checksums` — the cross-arm equality
    /// witness the benches compare.
    pub checksum: u64,
    /// Number of unroutable pairs.
    pub unreachable: usize,
    /// Sum of all hop counts (routable pairs only).
    pub total_hops: u64,
}

/// FNV-1a over a walk's node IDs plus its length — the per-route
/// fingerprint all serving arms (compiled single- and multi-worker,
/// legacy per-query BFS) must agree on.
pub fn walk_checksum(walk: &[NodeId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for &v in walk {
        mix(u64::from(v.0));
    }
    mix(walk.len() as u64);
    h
}

/// Order-sensitive fold of per-pair walk checksums into one batch
/// checksum — shared by [`QueryEngine::route_many`] and the serving
/// bench's per-query-BFS arm so cross-arm equality is one `u64`
/// compare.
pub fn fold_checksums(sums: &[u64]) -> u64 {
    let mut checksum = 0u64;
    for (i, &c) in sums.iter().enumerate() {
        checksum = checksum
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(c ^ (i as u64));
    }
    checksum
}

/// A batched query front end over a compiled plan.
///
/// With [`QueryEngine::with_metrics`] the engine reports per-batch
/// serving metrics: the `query.count` / `query.unroutable` counters,
/// the per-query `query.hops` histogram (all deterministic for any
/// worker count — they are commutative sums over per-pair facts), and
/// the per-batch `query.latency_ns` wall-clock histogram (timing, so
/// exempt from the determinism contract). The metric handles are
/// resolved once at construction, so the serve path never touches the
/// registry lock; without metrics every report is a one-branch no-op.
#[derive(Clone, Debug)]
pub struct QueryEngine<'p> {
    plan: &'p RoutePlan,
    workers: usize,
    queries: Counter,
    unroutable: Counter,
    hops: Hist,
    latency_ns: Hist,
}

impl<'p> QueryEngine<'p> {
    /// Single-worker engine (queries run inline on the caller's
    /// thread).
    pub fn new(plan: &'p RoutePlan) -> Self {
        QueryEngine::with_metrics(plan, 1, &Metrics::disabled())
    }

    /// Engine with `workers` scoped threads (clamped to at least 1).
    pub fn with_workers(plan: &'p RoutePlan, workers: usize) -> Self {
        QueryEngine::with_metrics(plan, workers, &Metrics::disabled())
    }

    /// Engine reporting into an observability handle (see the type
    /// docs for the metric family it emits).
    pub fn with_metrics(plan: &'p RoutePlan, workers: usize, metrics: &Metrics) -> Self {
        QueryEngine {
            plan,
            workers: workers.max(1),
            queries: metrics.counter("query.count"),
            unroutable: metrics.counter("query.unroutable"),
            hops: metrics.histogram("query.hops"),
            latency_ns: metrics.histogram("query.latency_ns"),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Serves a batch of `(source, target)` pairs, returning per-pair
    /// hop counts and walk checksums. With more than one worker the
    /// batch is split into contiguous chunks served by the shared
    /// worker pool ([`adhoc_graph::par::scoped_chunks`]), each chunk
    /// with its own scratch; the result is identical to the
    /// single-worker answer.
    pub fn route_many(&self, pairs: &[(NodeId, NodeId)]) -> BatchResult {
        let mut hops = vec![0u32; pairs.len()];
        let mut checksums = vec![0u64; pairs.len()];
        let plan = self.plan;
        let hop_hist = &self.hops;
        let latency_ns = &self.latency_ns;
        par::scoped_chunks(
            self.workers,
            pairs.len(),
            (pairs, &mut hops[..], &mut checksums[..]),
            |_, _, (p, h, c): (&[(NodeId, NodeId)], &mut [u32], &mut [u64])| {
                serve_chunk(plan, p, h, c, hop_hist, latency_ns)
            },
        );
        let checksum = fold_checksums(&checksums);
        let mut unreachable = 0usize;
        let mut total_hops = 0u64;
        for &h in &hops {
            if h == UNROUTABLE {
                unreachable += 1;
            } else {
                total_hops += u64::from(h);
            }
        }
        self.queries.add(pairs.len() as u64);
        self.unroutable.add(unreachable as u64);
        BatchResult {
            hops,
            checksums,
            checksum,
            unreachable,
            total_hops,
        }
    }
}

/// One worker's share: serve `pairs[i]` into `hops[i]` / `sums[i]`,
/// recording per-query hop counts (commutative, so deterministic
/// across worker counts) and — only when the handle is live, so the
/// metrics-off path never reads the clock — per-query latencies.
fn serve_chunk(
    plan: &RoutePlan,
    pairs: &[(NodeId, NodeId)],
    hops: &mut [u32],
    sums: &mut [u64],
    hop_hist: &Hist,
    latency_ns: &Hist,
) {
    let timed = !latency_ns.is_noop();
    let mut walk = Vec::new();
    for (i, &(u, v)) in pairs.iter().enumerate() {
        let start = timed.then(Instant::now);
        match plan.route_into(u, v, &mut walk) {
            Some(h) => {
                hops[i] = h;
                sums[i] = walk_checksum(&walk);
                hop_hist.record(u64::from(h));
            }
            None => {
                hops[i] = UNROUTABLE;
                sums[i] = 0;
            }
        }
        if let Some(start) = start {
            latency_ns.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::pipeline::{self, EvalScratch};
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn plan_for(n: usize, k: u32, seed: u64) -> RoutePlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&gen::GeometricConfig::new(n, 100.0, 7.0), &mut rng);
        let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let eval = pipeline::run_all_with(&net.graph, &c, &mut scratch);
        RoutePlan::compile(&net.graph, &c, scratch.labels(), eval.ac_graph.links())
    }

    #[test]
    fn worker_count_does_not_change_answers() {
        let plan = plan_for(80, 2, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let pairs: Vec<(NodeId, NodeId)> = (0..300)
            .map(|_| {
                (
                    NodeId(rng.gen_range(0..80u32)),
                    NodeId(rng.gen_range(0..80u32)),
                )
            })
            .collect();
        let one = QueryEngine::new(&plan).route_many(&pairs);
        for w in [2usize, 3, 7] {
            let many = QueryEngine::with_workers(&plan, w).route_many(&pairs);
            assert_eq!(one, many, "{w} workers diverged");
        }
        assert_eq!(one.unreachable, 0, "connected network routes everything");
        assert!(one.total_hops > 0);
    }

    #[test]
    fn batch_checksum_matches_per_route_checksums() {
        let plan = plan_for(50, 1, 9);
        let pairs = vec![(NodeId(0), NodeId(49)), (NodeId(3), NodeId(3))];
        let r = QueryEngine::new(&plan).route_many(&pairs);
        let w0 = plan.route(NodeId(0), NodeId(49)).unwrap();
        assert_eq!(r.checksums[0], walk_checksum(&w0));
        assert_eq!(r.hops[1], 0);
        assert_eq!(r.checksums[1], walk_checksum(&[NodeId(3)]));
    }

    #[test]
    fn unroutable_pairs_are_counted() {
        use adhoc_graph::graph::Graph;
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let eval = pipeline::run_all_with(&g, &c, &mut scratch);
        let plan = RoutePlan::compile(&g, &c, scratch.labels(), eval.ac_graph.links());
        let r = QueryEngine::with_workers(&plan, 2)
            .route_many(&[(NodeId(0), NodeId(3)), (NodeId(0), NodeId(1))]);
        assert_eq!(r.hops[0], UNROUTABLE);
        assert_eq!(r.unreachable, 1);
        assert_eq!(r.hops[1], 1);
    }

    #[test]
    fn empty_and_tiny_batches() {
        let plan = plan_for(30, 1, 11);
        let none = QueryEngine::with_workers(&plan, 4).route_many(&[]);
        assert!(none.hops.is_empty());
        assert_eq!(none.unreachable, 0);
        assert_eq!(none.checksum, 0);
        let single = QueryEngine::with_workers(&plan, 4).route_many(&[(NodeId(1), NodeId(2))]);
        assert_eq!(single.hops.len(), 1);
    }

    /// The metered engine's count metrics are exact batch facts — and
    /// identical whatever the worker count.
    #[test]
    fn metered_engine_records_query_metrics() {
        let plan = plan_for(60, 2, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let pairs: Vec<(NodeId, NodeId)> = (0..200)
            .map(|_| {
                (
                    NodeId(rng.gen_range(0..60u32)),
                    NodeId(rng.gen_range(0..60u32)),
                )
            })
            .collect();
        let mut fingerprints = Vec::new();
        for w in [1usize, 2, 5] {
            let m = Metrics::enabled();
            let r = QueryEngine::with_metrics(&plan, w, &m).route_many(&pairs);
            let snap = m.snapshot();
            assert_eq!(snap.counter("query.count"), Some(pairs.len() as u64));
            assert_eq!(snap.counter("query.unroutable"), Some(r.unreachable as u64));
            let hops = snap.histogram("query.hops").expect("hops histogram");
            assert_eq!(hops.count, (pairs.len() - r.unreachable) as u64);
            assert_eq!(hops.sum, r.total_hops);
            let lat = snap.histogram("query.latency_ns").expect("latency histogram");
            assert_eq!(lat.count, pairs.len() as u64);
            fingerprints.push(snap.deterministic_fingerprint());
        }
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "count metrics must not depend on the worker count"
        );
    }

    /// More workers than pairs: the chunking must clamp, serve every
    /// pair exactly once, and agree with the single-threaded engine.
    #[test]
    fn more_workers_than_pairs_matches_single_threaded() {
        let plan = plan_for(30, 1, 11);
        let pairs = [
            (NodeId(0), NodeId(29)),
            (NodeId(5), NodeId(17)),
            (NodeId(3), NodeId(3)),
        ];
        let wide = QueryEngine::with_workers(&plan, 16).route_many(&pairs);
        let serial = QueryEngine::new(&plan).route_many(&pairs);
        assert_eq!(wide.hops, serial.hops);
        assert_eq!(wide.unreachable, serial.unreachable);
        assert_eq!(wide.checksum, serial.checksum);
        assert_eq!(wide.hops.len(), pairs.len());
    }
}
