//! The route-serving subsystem — the paper's §1 routing motivation
//! ("smaller routing tables and fewer route updates") built out into a
//! serving layer over the clustering stack.
//!
//! Cluster-based hierarchical routing routes `u ⇝ v` as the walk
//! `u ⇝ head(u) ⇝ … virtual links … ⇝ head(v) ⇝ v`, with the standard
//! shortcut that the walk stops the first time it passes through `v`.
//! The price is *stretch* (walk length over true shortest distance);
//! the payoff is table size — a member keeps one entry per 1-hop
//! neighbor plus its head, a head one entry per other head.
//!
//! The module family:
//!
//! * [`plan`] — the compiled [`RoutePlan`]: per-node canonical ascent
//!   paths in one arena, a per-node head-affiliation index, and an
//!   inter-head first-hop table behind one facade with two layouts —
//!   the dense `h × h` matrix, or the [`hub`] hub-label index once the
//!   projected matrix crosses the auto threshold (both serve the same
//!   canonical rule bit-for-bit). Built once from the evaluation
//!   engine's head labels (`pipeline::EvalScratch`) and a backbone
//!   link set; queries are pure pointer chasing — **zero per-query
//!   BFS, `O(route length)` per query** — and need neither the graph
//!   nor the labels at serve time. [`RoutePlan::apply_delta`] repairs
//!   the plan after topology churn from the pipeline's dirty-slot
//!   information instead of rebuilding it; under the hub layout a
//!   backbone weight change re-sweeps only dirty hubs instead of
//!   recomputing all pairs.
//! * [`hub`] — the hub-labeling (2-level landmark) index over `G''`:
//!   rank-restricted pruned sweeps, flat CSR label arena, sound
//!   dirty-hub repair ([`InterMode`] picks the layout per compile).
//! * [`engine`] — the concurrent [`QueryEngine`]: batched
//!   [`route_many`](QueryEngine::route_many) over `std::thread::scope`
//!   workers with per-worker scratch, deterministic (bit-identical
//!   results and checksums for any worker count).
//! * [`workload`] — query-mix generators (uniform, hotspot,
//!   locality-biased) for the serving benchmarks.
//! * [`legacy`] — the original per-query-BFS [`ClusterRouter`], kept
//!   as the measured baseline the compiled plan is benchmarked
//!   against (`routing_serve`), now with scratch threaded through
//!   instead of allocating a fresh BFS per query.
//!
//! All routers produce **identical walks** on the same backbone
//! (pinned by the `route_equivalence` proptests), so throughput
//! comparisons are apples-to-apples: the arms checksum their walks and
//! the benches assert the checksums collide.

pub mod engine;
pub mod hub;
pub mod legacy;
pub mod plan;
pub mod workload;

mod inter;

pub use engine::{fold_checksums, walk_checksum, BatchResult, QueryEngine, UNROUTABLE};
pub use hub::HubIndex;
pub use inter::{InterMode, InterRepair, AUTO_HUB_THRESHOLD_BYTES};
pub use legacy::{ClusterRouter, LegacyScratch};
pub use plan::{PlanUpdate, RoutePlan};
pub use workload::{Mix, Workload};

use adhoc_graph::bfs::Adjacency;
use adhoc_graph::graph::NodeId;

use crate::clustering::Clustering;

/// Routing-table size statistics (the paper's "smaller routing
/// tables" claim, quantified) — **measured**, not modeled: member
/// entries are the actual per-node neighbor-label counts of the
/// clustering's graph, not a mean degree rounded to an integer.
#[derive(Clone, Copy, Debug, Default)]
pub struct TableStats {
    /// Fewest entries any member keeps (its clusterhead plus its 1-hop
    /// neighbor labels).
    pub member_min: usize,
    /// Mean entries over all members.
    pub member_mean: f64,
    /// Most entries any member keeps.
    pub member_max: usize,
    /// Entries a clusterhead keeps: one per other clusterhead.
    pub head_entries: usize,
    /// Entries per node under flat shortest-path routing: `N - 1`.
    pub flat_entries: usize,
}

impl TableStats {
    /// Measures the table sizes of `clustering` on `g`: every
    /// non-head node keeps `1 + deg(v)` entries (its head plus one
    /// distance label per radio neighbor), every head keeps one entry
    /// per other head. Nodes without a cluster (departed) are skipped.
    pub fn measure<G: Adjacency>(g: &G, clustering: &Clustering) -> TableStats {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut members = 0usize;
        for u in (0..g.node_count() as u32).map(NodeId) {
            let h = clustering.head_of(u);
            if h == u || h.index() >= g.node_count() {
                continue; // a head, or departed (sentinel affiliation)
            }
            let entries = 1 + g.adj(u).len();
            min = min.min(entries);
            max = max.max(entries);
            sum += entries;
            members += 1;
        }
        TableStats {
            member_min: if members == 0 { 0 } else { min },
            member_mean: if members == 0 {
                0.0
            } else {
                sum as f64 / members as f64
            },
            member_max: max,
            head_entries: clustering.head_count().saturating_sub(1),
            flat_entries: g.node_count().saturating_sub(1),
        }
    }
}

/// Walk validity + length helpers for experiments.
pub fn walk_hops(walk: &[NodeId]) -> u32 {
    walk.len().saturating_sub(1) as u32
}

/// Whether `walk` follows existing edges (repeated nodes allowed —
/// hierarchical routes are walks, not simple paths).
pub fn is_valid_walk<G: Adjacency>(g: &G, walk: &[NodeId]) -> bool {
    !walk.is_empty()
        && walk
            .windows(2)
            .all(|w| g.adj(w[0]).binary_search(&w[1]).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;

    #[test]
    fn table_stats_are_measured_not_modeled() {
        // star(6): head 0, five leaves of degree 1 — every member
        // keeps exactly 2 entries (hub + its one neighbor... the hub).
        let g = gen::star(6);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let s = TableStats::measure(&g, &c);
        assert_eq!((s.member_min, s.member_max), (2, 2));
        assert!((s.member_mean - 2.0).abs() < 1e-12);
        assert_eq!(s.head_entries, 0);
        assert_eq!(s.flat_entries, 5);
    }

    #[test]
    fn table_stats_spread_on_irregular_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let net = gen::geometric(&gen::GeometricConfig::new(150, 100.0, 6.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let s = TableStats::measure(&net.graph, &c);
        assert!(s.member_min <= s.member_max);
        assert!(s.member_mean >= s.member_min as f64);
        assert!(s.member_mean <= s.member_max as f64);
        assert!(s.head_entries < s.flat_entries / 2);
        assert!((s.member_mean as usize) < s.flat_entries / 4);
        // The mean is the true mean of 1 + deg over members.
        let (mut sum, mut cnt) = (0usize, 0usize);
        for u in net.graph.nodes() {
            if !c.is_head(u) {
                sum += 1 + net.graph.neighbors(u).len();
                cnt += 1;
            }
        }
        assert!((s.member_mean - sum as f64 / cnt as f64).abs() < 1e-12);
    }

    #[test]
    fn walk_helpers() {
        let g = gen::path(4);
        assert!(is_valid_walk(&g, &[NodeId(0), NodeId(1), NodeId(2)]));
        assert!(is_valid_walk(&g, &[NodeId(1), NodeId(2), NodeId(1)]));
        assert!(!is_valid_walk(&g, &[NodeId(0), NodeId(2)]));
        assert!(!is_valid_walk(&g, &[]));
        assert_eq!(walk_hops(&[NodeId(0), NodeId(1)]), 1);
        assert_eq!(walk_hops(&[NodeId(0)]), 0);
    }
}
