//! The per-query-BFS hierarchical router — the seed implementation,
//! kept as the measured baseline for the compiled [`RoutePlan`].
//!
//! [`ClusterRouter`] stores the backbone (a [`VirtualGraph`] plus
//! all-pairs inter-head next hops) but resolves every ascent and
//! descent with a fresh bounded BFS at query time. That per-query BFS
//! is exactly what the compiled plan eliminates, so the `routing_serve`
//! bench keeps this router alive as its baseline arm. Two historical
//! defects are fixed here rather than preserved:
//!
//! * the BFS **scratch is threaded through** ([`LegacyScratch`])
//!   instead of allocating a fresh `BfsScratch` — and with it a pair
//!   of `O(n)` buffers — per canonical-path call;
//! * the module-doc's promised **early-exit shortcut** (the walk stops
//!   the first time it passes through `v`) is actually applied, via
//!   [`paths::shortcut_walk`]; [`ClusterRouter::route_raw_with`] keeps
//!   the unshortcut walk for stretch comparisons.
//!
//! [`RoutePlan`]: super::plan::RoutePlan

use crate::adjacency::NeighborRule;
use crate::clustering::Clustering;
use crate::routing::inter::{self, CsrView, InterScratch, NO_HOP};
use crate::routing::TableStats;
use crate::virtual_graph::VirtualGraph;
use adhoc_graph::bfs::{self, Adjacency, BfsScratch};
use adhoc_graph::graph::NodeId;
use adhoc_graph::paths;
use std::collections::BTreeMap;

/// A hierarchical router over a clustering, resolving member ascents
/// and descents by per-query bounded BFS (the baseline the compiled
/// [`RoutePlan`](super::plan::RoutePlan) is measured against).
#[derive(Clone, Debug)]
pub struct ClusterRouter {
    clustering: Clustering,
    vg: VirtualGraph,
    /// Dense index of each head.
    head_index: BTreeMap<NodeId, usize>,
    /// Row-major `h × h` inter-head first hops (slot of the next head
    /// toward the target; [`NO_HOP`] when unreachable).
    next_head: Vec<u32>,
}

/// Reusable query state for [`ClusterRouter::route_with`]: one BFS
/// scratch (the per-query ascent/descent sweeps) and the descent
/// buffer. One per worker thread; queries allocate nothing once warm.
#[derive(Clone, Debug, Default)]
pub struct LegacyScratch {
    bfs: Option<BfsScratch>,
    down: Vec<NodeId>,
}

impl LegacyScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        LegacyScratch::default()
    }
}

impl ClusterRouter {
    /// Builds the router over the full adjacent-cluster graph `G''`
    /// (the A-NCR backbone): virtual graph plus all-pairs inter-head
    /// next-hop tables.
    pub fn build<G: Adjacency>(g: &G, clustering: &Clustering) -> Self {
        let vg = VirtualGraph::build(g, clustering, NeighborRule::Adjacent);
        Self::with_graph(clustering, vg)
    }

    /// Builds the router over an explicit backbone — any virtual graph
    /// whose links span the head set, e.g. one algorithm's selected
    /// links ([`VirtualGraph::from_links`]). This is how the serving
    /// bench instantiates the per-query-BFS baseline on exactly the
    /// link set the compiled plan serves, so the two arms' walks are
    /// comparable node for node.
    pub fn with_graph(clustering: &Clustering, vg: VirtualGraph) -> Self {
        let heads = clustering.heads.clone();
        let head_index: BTreeMap<NodeId, usize> =
            heads.iter().enumerate().map(|(i, &h)| (h, i)).collect();
        let m = heads.len();
        // Flat-CSR backbone with virtual-hop weights (both orientations
        // of each link, rows ascending by neighbor slot).
        let mut directed: Vec<(u32, u32, u32)> = Vec::new();
        for l in vg.links() {
            let (a, b) = (head_index[&l.a] as u32, head_index[&l.b] as u32);
            let w = l.hops();
            directed.push((a, b, w));
            directed.push((b, a, w));
        }
        directed.sort_unstable();
        let mut off = Vec::with_capacity(m + 1);
        let mut to = Vec::with_capacity(directed.len());
        let mut hops = Vec::with_capacity(directed.len());
        off.push(0u32);
        let mut cursor = 0usize;
        for s in 0..m as u32 {
            while cursor < directed.len() && directed[cursor].0 == s {
                to.push(directed[cursor].1);
                hops.push(directed[cursor].2);
                cursor += 1;
            }
            off.push(to.len() as u32);
        }
        let csr = CsrView {
            off: &off,
            to: &to,
            hops: &hops,
        };
        let next_head = inter::all_pairs_next_hops(csr, &mut InterScratch::new());
        ClusterRouter {
            clustering: clustering.clone(),
            vg,
            head_index,
            next_head,
        }
    }

    /// Routes `u ⇝ v`, returning the full node walk (inclusive), or
    /// `None` when the backbone does not connect their heads. The walk
    /// follows existing edges of `g`, stops the first time it passes
    /// through `v`, and carries no consecutive duplicates.
    pub fn route_with<G: Adjacency>(
        &self,
        g: &G,
        u: NodeId,
        v: NodeId,
        scratch: &mut LegacyScratch,
    ) -> Option<Vec<NodeId>> {
        let mut walk = self.route_raw_with(g, u, v, scratch)?;
        paths::shortcut_walk(&mut walk, v);
        Some(walk)
    }

    /// As [`Self::route_with`] but **without** the shortcut pass: the
    /// raw concatenation `u ⇝ head(u) ⇝ … ⇝ head(v) ⇝ v` (consecutive
    /// duplicates and all). Kept public so stretch experiments can
    /// quantify what the shortcut buys.
    pub fn route_raw_with<G: Adjacency>(
        &self,
        g: &G,
        u: NodeId,
        v: NodeId,
        scratch: &mut LegacyScratch,
    ) -> Option<Vec<NodeId>> {
        if u == v {
            return Some(vec![u]);
        }
        let hu = self.clustering.head_of(u);
        let hv = self.clustering.head_of(v);
        let LegacyScratch { bfs, down } = scratch;
        let bfs = bfs.get_or_insert_with(|| BfsScratch::new(g.node_count()));
        let mut walk: Vec<NodeId> = Vec::new();

        // Ascend: u -> head(u), one bounded BFS from the head.
        canonical_path_into(g, u, hu, self.clustering.k, bfs, &mut walk);

        // Across: head(u) -> head(v) over virtual links.
        let h = self.clustering.heads.len();
        let mut cur = self.head_index[&hu];
        let target = self.head_index[&hv];
        while cur != target {
            let nxt = self.next_head[cur * h + target];
            if nxt == NO_HOP {
                return None; // backbone does not connect the heads
            }
            let nxt = nxt as usize;
            let (a, b) = (self.clustering.heads[cur], self.clustering.heads[nxt]);
            let link = self.vg.link(a, b).expect("next-hop uses existing links");
            if link.path[0] == walk[walk.len() - 1] {
                walk.extend(link.path.iter().skip(1));
            } else {
                walk.extend(link.path.iter().rev().skip(1));
            }
            cur = nxt;
        }

        // Descend: head(v) -> v (reverse of v's ascent).
        down.clear();
        canonical_path_into(g, v, hv, self.clustering.k, bfs, down);
        walk.extend(down.iter().rev().skip(1));
        Some(walk)
    }

    /// One-shot convenience over [`Self::route_with`] (allocates its
    /// own scratch; hot callers keep a [`LegacyScratch`] per worker).
    pub fn route<G: Adjacency>(&self, g: &G, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.route_with(g, u, v, &mut LegacyScratch::new())
    }

    /// Measured routing-table statistics (see [`TableStats::measure`]).
    pub fn table_stats<G: Adjacency>(&self, g: &G) -> TableStats {
        TableStats::measure(g, &self.clustering)
    }

    /// The underlying virtual graph (for inspection).
    pub fn virtual_graph(&self) -> &VirtualGraph {
        &self.vg
    }
}

/// Appends the canonical shortest path from `x` to its head (bounded
/// by `k`) onto `out`, resolving it with one bounded BFS from the head
/// through the caller's scratch.
fn canonical_path_into<G: Adjacency>(
    g: &G,
    x: NodeId,
    head: NodeId,
    k: u32,
    scratch: &mut BfsScratch,
    out: &mut Vec<NodeId>,
) {
    scratch.run(g, head, k);
    let ok = bfs::lexico_path_append(g, x, head, scratch, out);
    assert!(ok, "member within k hops of head");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use crate::routing::{is_valid_walk, walk_hops};
    use adhoc_graph::gen;

    fn routed_ok<G: Adjacency>(g: &G, router: &ClusterRouter, u: NodeId, v: NodeId) -> u32 {
        let walk = router.route(g, u, v).expect("connected backbone");
        assert!(
            is_valid_walk(g, &walk),
            "{u:?}->{v:?}: invalid walk {walk:?}"
        );
        assert_eq!(walk[0], u);
        assert_eq!(*walk.last().unwrap(), v);
        walk_hops(&walk)
    }

    #[test]
    fn routes_on_path_graph() {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&g, &c);
        let hops = routed_ok(&g, &router, NodeId(0), NodeId(8));
        assert_eq!(hops, 8, "path routing must be stretch-free");
        let hops = routed_ok(&g, &router, NodeId(3), NodeId(5));
        assert!((2..=4).contains(&hops));
    }

    #[test]
    fn same_cluster_routing() {
        let g = gen::star(6);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&g, &c);
        let hops = routed_ok(&g, &router, NodeId(2), NodeId(4));
        assert_eq!(hops, 2); // via the hub head
        assert_eq!(routed_ok(&g, &router, NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn all_pairs_reachable_random() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 8.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let router = ClusterRouter::build(&net.graph, &c);
            // Sample pairs, sharing one scratch the way serving does.
            let mut scratch = LegacyScratch::new();
            for (u, v) in [(0u32, 59u32), (5, 40), (17, 23), (59, 0), (30, 31)] {
                let walk = router
                    .route_with(&net.graph, NodeId(u), NodeId(v), &mut scratch)
                    .unwrap();
                assert!(is_valid_walk(&net.graph, &walk));
                assert_eq!(walk[0], NodeId(u));
                assert_eq!(*walk.last().unwrap(), NodeId(v));
            }
        }
    }

    /// The shortcut is not cosmetic: when the destination sits on the
    /// source's canonical ascent, the old router walked up to the head
    /// and back down; the shortcut stops at the first visit.
    #[test]
    fn shortcut_beats_raw_walk() {
        // path(5) with k=2: head 0 owns {0,1,2}, head 3 owns {3,4}.
        // Routing 2 -> 1 ascends 2-1-0, then descends 0-1: raw walk
        // 2-1-0-1 (3 hops) vs shortcut 2-1 (1 hop, the true distance).
        let g = gen::path(5);
        let c = cluster(&g, 2, &LowestId, MemberPolicy::IdBased);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(3)]);
        let router = ClusterRouter::build(&g, &c);
        let mut scratch = LegacyScratch::new();
        let raw = router
            .route_raw_with(&g, NodeId(2), NodeId(1), &mut scratch)
            .unwrap();
        assert_eq!(raw, vec![NodeId(2), NodeId(1), NodeId(0), NodeId(1)]);
        let short = router
            .route_with(&g, NodeId(2), NodeId(1), &mut scratch)
            .unwrap();
        assert_eq!(short, vec![NodeId(2), NodeId(1)]);
        assert_eq!(walk_hops(&short), 1, "shortcut restores the true distance");
    }

    /// Stretch regression over random pairs: the shortcut never hurts
    /// and strictly helps somewhere.
    #[test]
    fn shortcut_improves_empirical_stretch() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(18);
        let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 7.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&net.graph, &c);
        let mut scratch = LegacyScratch::new();
        let mut helped = 0usize;
        for _ in 0..300 {
            let u = NodeId(rng.gen_range(0..90u32));
            let v = NodeId(rng.gen_range(0..90u32));
            if u == v {
                continue;
            }
            let raw = router
                .route_raw_with(&net.graph, u, v, &mut scratch)
                .unwrap();
            let short = router.route_with(&net.graph, u, v, &mut scratch).unwrap();
            assert!(walk_hops(&short) <= walk_hops(&raw), "{u:?}->{v:?}");
            if walk_hops(&short) < walk_hops(&raw) {
                helped += 1;
            }
        }
        assert!(helped > 0, "the shortcut must fire on some pairs");
    }

    #[test]
    fn stretch_is_bounded_empirically() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(10);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&net.graph, &c);
        let d0 = bfs::distances(&net.graph, NodeId(0));
        let mut worst = 0.0f64;
        for v in 1..net.graph.len() as u32 {
            let hops = routed_ok(&net.graph, &router, NodeId(0), NodeId(v));
            let true_d = d0[v as usize];
            worst = worst.max(f64::from(hops) / f64::from(true_d));
        }
        assert!(worst >= 1.0);
        assert!(worst <= 6.0, "hierarchical stretch {worst} implausibly large");
    }

    #[test]
    fn table_sizes_favor_hierarchy() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let net = gen::geometric(&gen::GeometricConfig::new(150, 100.0, 6.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&net.graph, &c);
        let stats = router.table_stats(&net.graph);
        assert!(stats.head_entries < stats.flat_entries / 2);
        assert!((stats.member_mean as usize) < stats.flat_entries / 4);
        assert!(stats.member_max < stats.flat_entries);
    }

    #[test]
    fn disconnected_backbone_routes_none() {
        use adhoc_graph::graph::Graph;
        // Two components: routing across them must return None, within
        // them must work.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let router = ClusterRouter::build(&g, &c);
        assert!(router.route(&g, NodeId(0), NodeId(5)).is_none());
        assert!(router.route(&g, NodeId(0), NodeId(2)).is_some());
    }
}
