//! The compiled route plan: every decision a hierarchical route needs,
//! precomputed into flat arrays so serving is pure pointer chasing.
//!
//! ```text
//! RoutePlan
//! ├─ per node (node-indexed)
//! │    head_slot — affiliation index: slot of the node's head
//! │    dist_head — hops to that head (≤ k)
//! │    up_off ───── up_arena — the node's full canonical ascent path
//! │                            u → … → head(u), inclusive
//! ├─ per head (CSR over the backbone G'')
//! │    link_off[h+1] ─┬─ link_to    — neighbor head slot
//! │                   ├─ link_hops  — virtual-link weight
//! │                   └─ path_off/len ── path_arena (both orientations
//! │                                      of every backbone path)
//! └─ inter — inter-head first hops, one of two layouts
//!      Dense: h × h first-hop matrix (O(1) lookups, O(h²) bytes)
//!      Hub:   hub-label arena — per-head (hub, dist) rows, CSR-packed
//!             (label-merge lookups, empirically sub-quadratic bytes)
//! ```
//!
//! [`InterMode::Auto`] (the [`RoutePlan::compile`] default) picks the
//! layout per compile: dense while the projected `h × h` table stays
//! under [`AUTO_HUB_THRESHOLD_BYTES`](inter::AUTO_HUB_THRESHOLD_BYTES),
//! hub labels beyond it. Both serve the identical canonical first hop
//! (see the crate-private `inter` module), so the choice never changes a single route.
//!
//! A query `u ⇝ v` copies `u`'s precompiled ascent, crosses the
//! backbone by `next_hop` lookups (appending precomputed oriented path
//! slices), appends `v`'s ascent reversed, and applies the
//! first-pass-through-`v` shortcut — `O(route length)` work, **zero
//! BFS, zero allocation** (into a caller-reused buffer), and no access
//! to the graph or the label store at serve time. Ascents are stored
//! as whole paths, not per-node parent pointers: a canonical ascent
//! routinely relays through *other clusters'* members (affiliation is
//! ID-based, not distance-based), so chaining per-node "toward my own
//! head" pointers would walk off `u`'s path after the first foreign
//! relay.
//!
//! Compilation reads the evaluation engine's shared head labels
//! ([`LabelStore`], dense or sparse alike) — the same one-sweep data
//! every other pipeline consumer uses — plus any backbone link set
//! (one algorithm's selected links, or a full virtual graph).
//! [`RoutePlan::apply_delta`] repairs a compiled plan after topology
//! churn using the pipeline's dirty-slot information: only members of
//! dirty heads (and re-affiliated nodes) re-walk their ascents (clean
//! rows are copied arena-segment-wise, the same trick the label store
//! uses), and the inter-head table is repaired only from the head
//! slots whose backbone rows actually changed — a full recompute for
//! the dense matrix, but only dirty-hub re-sweeps for the hub layout.

use crate::clustering::Clustering;
use crate::routing::inter::{
    self, CsrView, InterMode, InterRepair, InterScratch, InterTable, NO_HOP,
};
use crate::virtual_graph::LinkRef;
use adhoc_graph::bfs::{self, Adjacency, DistLabels, UNREACHED};
use adhoc_graph::delta::TopologyDelta;
use adhoc_graph::graph::NodeId;
use adhoc_graph::labels::LabelStore;
use adhoc_graph::obs::Metrics;
use adhoc_graph::par::{self, Parallelism};
use adhoc_graph::paths;

/// Affiliation marker for nodes outside every cluster (departed).
const NO_SLOT: u32 = u32::MAX;

/// A compiled, self-contained route-serving structure (see the module
/// docs for the layout). Queries borrow it immutably, so one plan can
/// serve any number of concurrent workers.
#[derive(Clone, Debug)]
pub struct RoutePlan {
    /// Publication counter: bumped by the maintainer each time it
    /// atomically swaps a new plan in (the churn engine's *publish*
    /// phase). Readers use it to tell plan generations apart without
    /// comparing contents; it is **excluded from equality** — two
    /// plans are `==` iff they serve identical routes.
    epoch: u64,
    k: u32,
    n: usize,
    /// Clusterheads in slot order (ascending, matching the labels).
    heads: Vec<NodeId>,
    /// Per node: slot of its head ([`NO_SLOT`] = unrouted/departed).
    head_slot: Vec<u32>,
    /// Per node: hops to its head (0 for heads).
    dist_head: Vec<u32>,
    /// `n + 1` offsets into `up_arena`: node `u`'s canonical ascent
    /// path `u → … → head(u)` inclusive (empty for unrouted nodes).
    up_off: Vec<u32>,
    up_arena: Vec<NodeId>,
    /// CSR offsets (`heads.len() + 1`) into the three link arrays.
    link_off: Vec<u32>,
    /// Directed backbone links: neighbor head slot...
    link_to: Vec<u32>,
    /// ...virtual-link weight in hops...
    link_hops: Vec<u32>,
    /// ...and the oriented (source-first) realized path as an
    /// `offset/len` slice of `path_arena`.
    link_path_off: Vec<u32>,
    link_path_len: Vec<u32>,
    path_arena: Vec<NodeId>,
    /// Inter-head first hops, dense matrix or hub-label index (see the
    /// module docs). Both answer the identical canonical rule.
    inter: InterTable,
    /// The layout policy this plan was compiled under — preserved
    /// across [`Self::apply_delta`] rebuilds so a maintained plan never
    /// silently flips policy. Excluded from equality (a policy knob,
    /// not served content).
    inter_mode: InterMode,
}

/// Content equality: every served decision, **ignoring** the
/// publication [`RoutePlan::epoch`] (a maintained plan bumps its epoch
/// on every publish yet must compare equal to a fresh compile).
impl PartialEq for RoutePlan {
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.n == other.n
            && self.heads == other.heads
            && self.head_slot == other.head_slot
            && self.dist_head == other.dist_head
            && self.up_off == other.up_off
            && self.up_arena == other.up_arena
            && self.link_off == other.link_off
            && self.link_to == other.link_to
            && self.link_hops == other.link_hops
            && self.link_path_off == other.link_path_off
            && self.link_path_len == other.link_path_len
            && self.path_arena == other.path_arena
            && self.inter == other.inter
    }
}

impl Eq for RoutePlan {}

/// What [`RoutePlan::apply_delta`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanUpdate {
    /// The plan was recompiled from scratch (head set or node count
    /// changed — slot layout invalid).
    pub rebuilt: bool,
    /// Nodes whose affiliation/ascent entries were re-derived (clean
    /// nodes' ascent paths are copied, not re-walked).
    pub resweeped_nodes: usize,
    /// Whether the inter-head table changed at all (the backbone's
    /// weighted link set changed).
    pub next_recomputed: bool,
    /// What the inter-head repair actually did: a full recompute only
    /// for the dense layout; the hub layout re-sweeps dirty hubs.
    pub inter: InterRepair,
}

impl PlanUpdate {
    /// Reports this update's repair scope into `metrics` — the
    /// counters behind the serving layer's `plan.*` / `hub.*` metric
    /// families. All values are exact update facts, so the counts are
    /// deterministic for any worker count.
    pub fn record_into(&self, metrics: &Metrics) {
        if self.rebuilt {
            metrics.inc("plan.rebuilt");
        }
        metrics.add("plan.resweeped_nodes", self.resweeped_nodes as u64);
        if self.next_recomputed {
            metrics.inc("plan.next_recomputed");
        }
        match self.inter {
            InterRepair::Unchanged => metrics.inc("inter.unchanged"),
            InterRepair::DenseRecomputed => metrics.inc("inter.dense_recomputed"),
            InterRepair::HubRepaired { dirty_hubs } => {
                metrics.inc("hub.repaired");
                metrics.add("hub.dirty_hubs", dirty_hubs as u64);
            }
            InterRepair::HubRebuilt => metrics.inc("hub.rebuilt"),
        }
    }
}

/// The directed-CSR backbone arrays, grouped so compilation and delta
/// repair share one builder.
struct Backbone {
    link_off: Vec<u32>,
    link_to: Vec<u32>,
    link_hops: Vec<u32>,
    link_path_off: Vec<u32>,
    link_path_len: Vec<u32>,
    path_arena: Vec<NodeId>,
}

impl Backbone {
    /// Packs a backbone link set into directed CSR form: each
    /// undirected link contributes both orientations, each with a
    /// source-first copy of its path (so queries never branch on
    /// direction).
    fn build<'a>(heads: &[NodeId], links: impl IntoIterator<Item = LinkRef<'a>>) -> Backbone {
        let slot = |h: NodeId| -> u32 {
            heads
                .binary_search(&h)
                .unwrap_or_else(|_| panic!("link endpoint {h:?} is not a head"))
                as u32
        };
        let mut directed: Vec<(u32, u32, LinkRef<'a>, bool)> = Vec::new();
        for l in links {
            let (sa, sb) = (slot(l.a), slot(l.b));
            directed.push((sa, sb, l, false));
            directed.push((sb, sa, l, true));
        }
        directed.sort_unstable_by_key(|&(s, t, _, _)| (s, t));
        let h = heads.len();
        let mut bb = Backbone {
            link_off: Vec::with_capacity(h + 1),
            link_to: Vec::with_capacity(directed.len()),
            link_hops: Vec::with_capacity(directed.len()),
            link_path_off: Vec::with_capacity(directed.len()),
            link_path_len: Vec::with_capacity(directed.len()),
            path_arena: Vec::new(),
        };
        let mut cursor = 0usize;
        bb.link_off.push(0);
        for s in 0..h as u32 {
            let row_start = bb.link_to.len();
            while cursor < directed.len() && directed[cursor].0 == s {
                let (_, t, l, reversed) = directed[cursor];
                debug_assert!(
                    bb.link_to[row_start..].last() != Some(&t),
                    "duplicate backbone link {s} -> {t}"
                );
                bb.link_to.push(t);
                bb.link_hops.push(l.hops());
                bb.link_path_off.push(bb.path_arena.len() as u32);
                bb.link_path_len.push(l.path.len() as u32);
                if reversed {
                    bb.path_arena.extend(l.path.iter().rev());
                } else {
                    bb.path_arena.extend_from_slice(l.path);
                }
                cursor += 1;
            }
            bb.link_off.push(bb.link_to.len() as u32);
        }
        bb
    }

    /// Borrowed weighted-CSR view for the inter-head machinery.
    fn csr(&self) -> CsrView<'_> {
        CsrView {
            off: &self.link_off,
            to: &self.link_to,
            hops: &self.link_hops,
        }
    }
}

impl RoutePlan {
    /// Compiles a plan from the pipeline's shared head labels and a
    /// backbone link set (e.g. one algorithm's selected links via
    /// [`EvaluationOutput::selected_links`], or a whole virtual
    /// graph's [`links`]).
    ///
    /// [`EvaluationOutput::selected_links`]: crate::pipeline::EvaluationOutput::selected_links
    /// [`links`]: crate::virtual_graph::VirtualGraph::links
    ///
    /// # Panics
    /// Panics if `labels` was built for a different head set or node
    /// count, if its bound is below `k` (members' ascents would be
    /// unresolvable), or if a link endpoint is not a head.
    pub fn compile<'a, G: Adjacency + Sync>(
        g: &G,
        clustering: &Clustering,
        labels: &LabelStore,
        links: impl IntoIterator<Item = LinkRef<'a>>,
    ) -> RoutePlan {
        RoutePlan::compile_with(g, clustering, labels, links, InterMode::Auto)
    }

    /// [`Self::compile`] with an explicit inter-head layout policy
    /// instead of the [`InterMode::Auto`] default.
    pub fn compile_with<'a, G: Adjacency + Sync>(
        g: &G,
        clustering: &Clustering,
        labels: &LabelStore,
        links: impl IntoIterator<Item = LinkRef<'a>>,
        mode: InterMode,
    ) -> RoutePlan {
        RoutePlan::compile_tuned(g, clustering, labels, links, mode, Parallelism::serial())
    }

    /// [`Self::compile_with`] over a worker pool: the per-node ascent
    /// walks and the inter-head build (dense all-pairs rows or pruned
    /// hub sweeps) fan out across `par` workers. The compiled plan is
    /// **bit-identical** for any worker count — every per-node and
    /// per-hub unit is a pure function of its inputs, outputs land in
    /// pre-partitioned slices or are merged in chunk order, and the
    /// `parallel_equivalence` proptests pin the equality.
    pub fn compile_tuned<'a, G: Adjacency + Sync>(
        g: &G,
        clustering: &Clustering,
        labels: &LabelStore,
        links: impl IntoIterator<Item = LinkRef<'a>>,
        mode: InterMode,
        par: Parallelism,
    ) -> RoutePlan {
        RoutePlan::compile_metered(g, clustering, labels, links, mode, par, &Metrics::disabled())
    }

    /// [`Self::compile_tuned`] reporting into an observability handle:
    /// an overall `plan.compile_ns` span, an ascent-walk span, and a
    /// layout-specific inter-head build span (`hub.build_ns` /
    /// `inter.dense_build_ns`). With [`Metrics::disabled`] every report
    /// is a single-branch no-op — which is exactly what
    /// [`Self::compile_tuned`] passes.
    #[allow(clippy::too_many_arguments)]
    pub fn compile_metered<'a, G: Adjacency + Sync>(
        g: &G,
        clustering: &Clustering,
        labels: &LabelStore,
        links: impl IntoIterator<Item = LinkRef<'a>>,
        mode: InterMode,
        par: Parallelism,
        metrics: &Metrics,
    ) -> RoutePlan {
        let _compile = metrics.span("plan.compile_ns");
        metrics.inc("plan.compiled");
        let n = g.node_count();
        assert_eq!(labels.heads(), &clustering.heads[..], "head set mismatch");
        assert_eq!(labels.node_count(), n, "labels describe a different graph");
        assert!(labels.bound() >= clustering.k, "labels too shallow for ascents");
        let mut plan = RoutePlan {
            epoch: 0,
            k: clustering.k,
            n,
            heads: clustering.heads.clone(),
            head_slot: Vec::new(),
            dist_head: Vec::new(),
            up_off: Vec::new(),
            up_arena: Vec::new(),
            link_off: Vec::new(),
            link_to: Vec::new(),
            link_hops: Vec::new(),
            link_path_off: Vec::new(),
            link_path_len: Vec::new(),
            path_arena: Vec::new(),
            inter: InterTable::Dense {
                h: 0,
                next_hop: Vec::new(),
            },
            inter_mode: mode,
        };
        {
            let _ascents = metrics.span("plan.ascents_ns");
            plan.build_ascents(g, clustering, labels, None, par);
        }
        let bb = Backbone::build(&plan.heads, links);
        let mut scratch = InterScratch::new();
        {
            // Resolve the layout up front so the build lands in the
            // span that names it.
            let span = if mode.wants_hub(bb.csr().head_count()) {
                "hub.build_ns"
            } else {
                "inter.dense_build_ns"
            };
            let _build = metrics.span(span);
            plan.inter = InterTable::build_with(mode, bb.csr(), &mut scratch, par.workers());
        }
        plan.adopt_backbone(bb);
        plan
    }

    /// (Re)derives the per-node affiliation arrays and the ascent-path
    /// arena. With `rewalk = None` every node is walked fresh; with a
    /// mask, clean nodes' entries are copied from the previous arena
    /// segment-wise and only flagged nodes re-walk their canonical
    /// path off the labels.
    ///
    /// The node range is chunked across `par` workers: each writes its
    /// own disjoint slice of the affiliation arrays and appends ascent
    /// paths to a local arena fragment; fragments are concatenated in
    /// chunk (= node) order, so the arena is bit-identical to the
    /// serial walk for any worker count.
    fn build_ascents<G: Adjacency + Sync>(
        &mut self,
        g: &G,
        clustering: &Clustering,
        labels: &LabelStore,
        rewalk: Option<&[bool]>,
        par: Parallelism,
    ) {
        let n = self.n;
        let prev_off = std::mem::take(&mut self.up_off);
        let prev_arena = std::mem::take(&mut self.up_arena);
        let mut head_slot = std::mem::take(&mut self.head_slot);
        let mut dist_head = std::mem::take(&mut self.dist_head);
        head_slot.resize(n, NO_SLOT);
        dist_head.resize(n, 0);
        let frags = par::scoped_chunks(
            par.workers(),
            n,
            (&mut head_slot[..], &mut dist_head[..]),
            |off, take, (hs, dh): (&mut [u32], &mut [u32])| {
                let mut lens = Vec::with_capacity(take);
                let mut arena: Vec<NodeId> = Vec::new();
                for i in 0..take {
                    let u = NodeId((off + i) as u32);
                    let copy_clean = matches!(rewalk, Some(mask) if !mask[u.index()]);
                    if copy_clean {
                        let (lo, hi) = (
                            prev_off[u.index()] as usize,
                            prev_off[u.index() + 1] as usize,
                        );
                        arena.extend_from_slice(&prev_arena[lo..hi]);
                        lens.push((hi - lo) as u32);
                        continue;
                    }
                    let h = clustering.head_of(u);
                    if h.index() >= n {
                        // Departed / unclustered sentinel affiliation.
                        hs[i] = NO_SLOT;
                        dh[i] = 0;
                        lens.push(0);
                    } else {
                        let slot = labels
                            .slot(h)
                            .unwrap_or_else(|| panic!("affiliation head {h:?} is not labeled"));
                        hs[i] = slot as u32;
                        if u == h {
                            dh[i] = 0;
                            arena.push(u);
                            lens.push(1);
                        } else {
                            let row = labels.row(slot);
                            let d = row.dist(u);
                            assert!(
                                d != UNREACHED && d <= clustering.k,
                                "member {u:?} at label distance {d} from head {h:?} (k = {})",
                                clustering.k
                            );
                            dh[i] = d;
                            let before = arena.len();
                            let ok = bfs::lexico_path_append(g, u, h, &row, &mut arena);
                            debug_assert!(ok);
                            lens.push((arena.len() - before) as u32);
                        }
                    }
                }
                (lens, arena)
            },
        );
        let mut up_off = Vec::with_capacity(n + 1);
        let mut up_arena: Vec<NodeId> = Vec::with_capacity(prev_arena.capacity().max(n));
        up_off.push(0u32);
        for (lens, arena) in frags {
            let mut acc = up_arena.len() as u32;
            for l in lens {
                acc += l;
                up_off.push(acc);
            }
            up_arena.extend_from_slice(&arena);
        }
        self.head_slot = head_slot;
        self.dist_head = dist_head;
        self.up_off = up_off;
        self.up_arena = up_arena;
    }

    fn adopt_backbone(&mut self, bb: Backbone) {
        self.link_off = bb.link_off;
        self.link_to = bb.link_to;
        self.link_hops = bb.link_hops;
        self.link_path_off = bb.link_path_off;
        self.link_path_len = bb.link_path_len;
        self.path_arena = bb.path_arena;
    }

    /// Repairs the plan after a [`TopologyDelta`], given the
    /// post-delta clustering, the **already advanced** labels (see
    /// [`pipeline::advance_labels`]), the label slots the delta
    /// dirtied, and the post-delta backbone link set.
    ///
    /// [`pipeline::advance_labels`]: crate::pipeline::advance_labels
    ///
    /// Soundness of the localized repair: a node's ascent is derived
    /// from its head's label row plus the adjacency of nodes on the
    /// path (all inside the head's ball) — any changed edge touching
    /// either has an endpoint in that ball and therefore dirties the
    /// head. So re-walking only members of dirty heads plus
    /// re-affiliated nodes reproduces a full recompile exactly (pinned
    /// by the `route_equivalence` proptests). The inter-head table is
    /// repaired only from the head slots whose backbone rows changed —
    /// a full recompute for the dense matrix (it has no cheaper sound
    /// repair), dirty-hub re-sweeps for the hub layout (pinned against
    /// a fresh compile by the `hub_equivalence` proptests); falls back
    /// to a full [`Self::compile_with`] (preserving the layout policy)
    /// when the head set or node count changed.
    ///
    /// # Panics
    /// As [`Self::compile`].
    pub fn apply_delta<'a, G: Adjacency + Sync>(
        &mut self,
        g: &G,
        clustering: &Clustering,
        labels: &LabelStore,
        delta: &TopologyDelta,
        dirty_slots: &[usize],
        links: impl IntoIterator<Item = LinkRef<'a>>,
    ) -> PlanUpdate {
        self.apply_delta_tuned(
            g,
            clustering,
            labels,
            delta,
            dirty_slots,
            links,
            Parallelism::serial(),
        )
    }

    /// [`Self::apply_delta`] over a worker pool: the dirty-node ascent
    /// re-walks and the inter-head repair (dense recompute or dirty-hub
    /// re-sweeps) fan out across `par` workers, bit-identical to the
    /// serial repair for any worker count.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_delta_tuned<'a, G: Adjacency + Sync>(
        &mut self,
        g: &G,
        clustering: &Clustering,
        labels: &LabelStore,
        delta: &TopologyDelta,
        dirty_slots: &[usize],
        links: impl IntoIterator<Item = LinkRef<'a>>,
        par: Parallelism,
    ) -> PlanUpdate {
        self.apply_delta_metered(
            g,
            clustering,
            labels,
            delta,
            dirty_slots,
            links,
            par,
            &Metrics::disabled(),
        )
    }

    /// [`Self::apply_delta_tuned`] reporting into an observability
    /// handle: an overall `plan.apply_delta_ns` span, a
    /// layout-specific inter-head repair span (`hub.repair_ns` /
    /// `inter.dense_repair_ns`), and the repair-scope counters of
    /// [`PlanUpdate::record_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn apply_delta_metered<'a, G: Adjacency + Sync>(
        &mut self,
        g: &G,
        clustering: &Clustering,
        labels: &LabelStore,
        delta: &TopologyDelta,
        dirty_slots: &[usize],
        links: impl IntoIterator<Item = LinkRef<'a>>,
        par: Parallelism,
        metrics: &Metrics,
    ) -> PlanUpdate {
        let _apply = metrics.span("plan.apply_delta_ns");
        if self.heads != clustering.heads || self.n != g.node_count() {
            let epoch = self.epoch;
            *self =
                RoutePlan::compile_metered(g, clustering, labels, links, self.inter_mode, par, metrics);
            self.epoch = epoch;
            let inter = match self.inter {
                InterTable::Dense { .. } => InterRepair::DenseRecomputed,
                InterTable::Hub(_) => InterRepair::HubRebuilt,
            };
            let update = PlanUpdate {
                rebuilt: true,
                resweeped_nodes: self.n,
                next_recomputed: true,
                inter,
            };
            update.record_into(metrics);
            return update;
        }
        let _ = delta; // the dirty-slot set already covers every effect
        let mut dirty = vec![false; self.heads.len()];
        for &s in dirty_slots {
            dirty[s] = true;
        }
        let mut rewalk = vec![false; self.n];
        let mut resweeped = 0usize;
        for u in (0..self.n as u32).map(NodeId) {
            let h = clustering.head_of(u);
            let new_slot = if h.index() >= self.n {
                NO_SLOT
            } else {
                labels
                    .slot(h)
                    .unwrap_or_else(|| panic!("affiliation head {h:?} is not labeled"))
                    as u32
            };
            let moved = new_slot != self.head_slot[u.index()];
            let dirtied = new_slot != NO_SLOT && dirty[new_slot as usize];
            if moved || dirtied {
                rewalk[u.index()] = true;
                resweeped += 1;
            }
        }
        {
            let _ascents = metrics.span("plan.ascents_ns");
            self.build_ascents(g, clustering, labels, Some(&rewalk), par);
        }
        let bb = Backbone::build(&self.heads, links);
        let changed = self.changed_backbone_slots(&bb);
        let mut scratch = InterScratch::new();
        let inter = {
            let span = match self.inter {
                InterTable::Hub(_) => "hub.repair_ns",
                InterTable::Dense { .. } => "inter.dense_repair_ns",
            };
            let _repair = metrics.span(span);
            self.inter
                .repair_with(&changed, bb.csr(), &mut scratch, par.workers())
        };
        self.adopt_backbone(bb);
        let update = PlanUpdate {
            rebuilt: false,
            resweeped_nodes: resweeped,
            next_recomputed: inter != InterRepair::Unchanged,
            inter,
        };
        update.record_into(metrics);
        update
    }

    /// Head slots (ascending) whose directed backbone rows — neighbor
    /// set or weights — differ between the compiled plan and `bb`:
    /// both endpoints of every added, removed, or re-weighted link.
    fn changed_backbone_slots(&self, bb: &Backbone) -> Vec<u32> {
        let h = self.heads.len();
        let mut changed = Vec::new();
        for s in 0..h {
            let (alo, ahi) = (self.link_off[s] as usize, self.link_off[s + 1] as usize);
            let (blo, bhi) = (bb.link_off[s] as usize, bb.link_off[s + 1] as usize);
            if self.link_to[alo..ahi] != bb.link_to[blo..bhi]
                || self.link_hops[alo..ahi] != bb.link_hops[blo..bhi]
            {
                changed.push(s as u32);
            }
        }
        changed
    }

    /// Routes `u ⇝ v` into `out` (cleared first; the caller reuses the
    /// buffer across queries — that is the per-worker scratch),
    /// returning the hop count, or `None` when either endpoint is
    /// unrouted (departed) or the backbone does not connect their
    /// heads (`out` then holds an unspecified prefix). The walk
    /// follows graph edges, stops the first time it passes through
    /// `v`, and carries no consecutive duplicates — node-for-node what
    /// the legacy per-query-BFS router produces on the same backbone.
    pub fn route_into(&self, u: NodeId, v: NodeId, out: &mut Vec<NodeId>) -> Option<u32> {
        out.clear();
        let su = *self.head_slot.get(u.index())?;
        let sv = *self.head_slot.get(v.index())?;
        if su == NO_SLOT || sv == NO_SLOT {
            return None;
        }
        if u == v {
            out.push(u);
            return Some(0);
        }
        // Ascend: u's precompiled canonical path to its head.
        out.extend_from_slice(self.ascent(u));
        // Across: inter-head table lookups, appending oriented paths.
        let csr = self.csr();
        let mut s = su as usize;
        let t = sv as usize;
        while s != t {
            let nh = self.inter.next_hop(s, t, csr);
            if nh == NO_HOP {
                return None;
            }
            let (lo, hi) = (self.link_off[s] as usize, self.link_off[s + 1] as usize);
            let i = lo
                + self.link_to[lo..hi]
                    .binary_search(&nh)
                    .expect("next-hop uses existing links");
            let off = self.link_path_off[i] as usize;
            let len = self.link_path_len[i] as usize;
            out.extend_from_slice(&self.path_arena[off + 1..off + len]);
            s = nh as usize;
        }
        // Descend: v's ascent, reversed (its head is already at the
        // walk's tail).
        out.extend(self.ascent(v).iter().rev().skip(1));
        paths::shortcut_walk(out, v);
        Some((out.len() - 1) as u32)
    }

    /// One-shot convenience over [`Self::route_into`].
    pub fn route(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        let mut out = Vec::new();
        self.route_into(u, v, &mut out).map(|_| out)
    }

    /// Borrowed weighted-CSR view of the compiled backbone.
    fn csr(&self) -> CsrView<'_> {
        CsrView {
            off: &self.link_off,
            to: &self.link_to,
            hops: &self.link_hops,
        }
    }

    /// `u`'s stored canonical ascent path (inclusive of `u` and its
    /// head; empty for unrouted nodes).
    fn ascent(&self, u: NodeId) -> &[NodeId] {
        let (lo, hi) = (
            self.up_off[u.index()] as usize,
            self.up_off[u.index() + 1] as usize,
        );
        &self.up_arena[lo..hi]
    }

    /// The clustering radius the plan was compiled for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of nodes the plan serves.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The clusterheads, in slot order.
    pub fn heads(&self) -> &[NodeId] {
        &self.heads
    }

    /// Number of undirected backbone links.
    pub fn link_count(&self) -> usize {
        self.link_to.len() / 2
    }

    /// `u`'s affiliation: `(head slot, hops to head)`, or `None` for
    /// unrouted (departed) nodes.
    pub fn affiliation(&self, u: NodeId) -> Option<(usize, u32)> {
        match self.head_slot.get(u.index()) {
            Some(&s) if s != NO_SLOT => Some((s as usize, self.dist_head[u.index()])),
            _ => None,
        }
    }

    /// The backbone neighbor slots of the head in `slot`, ascending.
    pub fn backbone_neighbors(&self, slot: usize) -> &[u32] {
        let (lo, hi) = (self.link_off[slot] as usize, self.link_off[slot + 1] as usize);
        &self.link_to[lo..hi]
    }

    /// The publication epoch the maintainer stamped this plan with
    /// (0 for a freshly compiled plan).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps the publication epoch. Called by the maintainer's
    /// publish phase when atomically swapping the served plan; has no
    /// effect on [`PartialEq`] content equality.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The layout policy the plan was compiled under.
    pub fn inter_mode(&self) -> InterMode {
        self.inter_mode
    }

    /// The inter-head layout actually in use (`dense` / `hub` —
    /// [`InterMode::Auto`] resolves at compile time).
    pub fn inter_layout(&self) -> &'static str {
        self.inter.layout_name()
    }

    /// Heap bytes of the inter-head table alone (part of
    /// [`Self::memory_bytes`]) — the quantity the hub layout makes
    /// sub-quadratic in `h`.
    pub fn inter_memory_bytes(&self) -> usize {
        self.inter.memory_bytes()
    }

    /// Bytes the dense `h × h` first-hop matrix would take for this
    /// plan's head count — what [`Self::inter_memory_bytes`] is
    /// measured against.
    pub fn projected_dense_inter_bytes(&self) -> usize {
        inter::projected_dense_bytes(self.heads.len())
    }

    /// Heap bytes the compiled plan holds — the serving-side footprint
    /// (per-node arrays + ascent arena + backbone CSR + the inter-head
    /// table in whichever layout was compiled).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.head_slot.capacity()
            + self.dist_head.capacity()
            + self.up_off.capacity()
            + self.link_off.capacity()
            + self.link_to.capacity()
            + self.link_hops.capacity()
            + self.link_path_off.capacity()
            + self.link_path_len.capacity())
            * size_of::<u32>()
            + (self.heads.capacity() + self.up_arena.capacity() + self.path_arena.capacity())
                * size_of::<NodeId>()
            + self.inter.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::pipeline::{self, EvalScratch};
    use crate::priority::LowestId;
    use crate::routing::{is_valid_walk, walk_hops};
    use adhoc_graph::gen;

    fn compile_ac(g: &adhoc_graph::graph::Graph, k: u32) -> (Clustering, RoutePlan) {
        let c = cluster(g, k, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let eval = pipeline::run_all_with(g, &c, &mut scratch);
        let plan = RoutePlan::compile(g, &c, scratch.labels(), eval.ac_graph.links());
        (c, plan)
    }

    #[test]
    fn plan_routes_on_path_graph() {
        let g = gen::path(9);
        let (_, plan) = compile_ac(&g, 1);
        let walk = plan.route(NodeId(0), NodeId(8)).unwrap();
        assert!(is_valid_walk(&g, &walk));
        assert_eq!(walk_hops(&walk), 8, "path routing must be stretch-free");
        assert_eq!(plan.route(NodeId(4), NodeId(4)).unwrap(), vec![NodeId(4)]);
    }

    #[test]
    fn plan_shortcut_stops_at_first_visit() {
        // Same instance as the legacy shortcut test: 2 -> 1 inside
        // head 0's cluster must not detour through the head.
        let g = gen::path(5);
        let (c, plan) = compile_ac(&g, 2);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(3)]);
        assert_eq!(
            plan.route(NodeId(2), NodeId(1)).unwrap(),
            vec![NodeId(2), NodeId(1)]
        );
    }

    #[test]
    fn plan_routes_are_valid_walks_random() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(70, 100.0, 7.0), &mut rng);
            let (_, plan) = compile_ac(&net.graph, k);
            let mut out = Vec::new();
            for _ in 0..50 {
                let u = NodeId(rng.gen_range(0..70u32));
                let v = NodeId(rng.gen_range(0..70u32));
                let hops = plan.route_into(u, v, &mut out).unwrap();
                assert!(is_valid_walk(&net.graph, &out), "{u:?}->{v:?}: {out:?}");
                assert_eq!(out[0], u);
                assert_eq!(*out.last().unwrap(), v);
                assert_eq!(hops, walk_hops(&out));
            }
        }
    }

    #[test]
    fn disconnected_backbone_routes_none() {
        use adhoc_graph::graph::Graph;
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (_, plan) = compile_ac(&g, 1);
        assert!(plan.route(NodeId(0), NodeId(5)).is_none());
        assert!(plan.route(NodeId(0), NodeId(2)).is_some());
    }

    #[test]
    fn accessors_describe_the_plan() {
        let g = gen::path(9);
        let (c, plan) = compile_ac(&g, 1);
        assert_eq!(plan.k(), 1);
        assert_eq!(plan.node_count(), 9);
        assert_eq!(plan.heads(), &c.heads[..]);
        assert_eq!(plan.link_count(), 4); // consecutive heads on path(9)
        assert_eq!(plan.affiliation(NodeId(0)), Some((0, 0)));
        assert_eq!(plan.affiliation(NodeId(1)), Some((0, 1)));
        assert!(plan.memory_bytes() > 0);
        // Head 2 (slot 1) touches heads 0 and 4 on the backbone.
        assert_eq!(plan.backbone_neighbors(1), &[0, 2]);
    }

    /// An ascent that relays through a foreign cluster's member must
    /// still reach the right head — the reason ascents are stored as
    /// whole paths, not chained per-node parent pointers.
    #[test]
    fn foreign_relay_ascents_terminate() {
        use adhoc_graph::graph::Graph;
        // k=2 star-of-paths: head 0; node 5's canonical path to head 0
        // runs through node 1. Make 1 a member of a *different* head
        // (9) by wiring 9 closer to 1's contest... Simpler: verify on
        // random graphs that every stored ascent ends at the node's
        // own head and has the recorded length.
        let g = Graph::from_edges(
            10,
            &[(0, 1), (1, 5), (0, 2), (2, 6), (5, 6), (3, 9), (9, 1), (0, 3)],
        );
        let (c, plan) = compile_ac(&g, 2);
        for u in g.nodes() {
            if let Some((slot, d)) = plan.affiliation(u) {
                let a = plan.ascent(u);
                assert_eq!(a.first(), Some(&u));
                assert_eq!(a.last(), Some(&c.heads[slot]));
                assert_eq!(a.len() as u32, d + 1);
                assert!(is_valid_walk(&g, a));
            }
        }
    }

    /// Forcing the hub layout must not change a single route, and the
    /// two layouts report themselves correctly (Auto resolves dense at
    /// toy scale).
    #[test]
    fn hub_layout_serves_identical_routes() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(78);
        let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 8.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let eval = pipeline::run_all_with(&net.graph, &c, &mut scratch);
        let dense = RoutePlan::compile_with(
            &net.graph,
            &c,
            scratch.labels(),
            eval.ac_graph.links(),
            InterMode::Dense,
        );
        let hub = RoutePlan::compile_with(
            &net.graph,
            &c,
            scratch.labels(),
            eval.ac_graph.links(),
            InterMode::Hub,
        );
        let auto = RoutePlan::compile(&net.graph, &c, scratch.labels(), eval.ac_graph.links());
        assert_eq!(dense.inter_layout(), "dense");
        assert_eq!(hub.inter_layout(), "hub");
        assert_eq!(auto.inter_layout(), "dense", "toy scale stays dense");
        assert_eq!(auto, dense);
        assert!(hub.inter_memory_bytes() > 0);
        for _ in 0..200 {
            let u = NodeId(rng.gen_range(0..60u32));
            let v = NodeId(rng.gen_range(0..60u32));
            assert_eq!(dense.route(u, v), hub.route(u, v), "{u:?} -> {v:?}");
        }
    }

    #[test]
    #[should_panic(expected = "head set mismatch")]
    fn compile_rejects_foreign_labels() {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let other = cluster(&gen::path(7), 1, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let _ = pipeline::run_all_with(&gen::path(7), &other, &mut scratch);
        let _ = RoutePlan::compile(&g, &c, scratch.labels(), std::iter::empty());
    }
}
