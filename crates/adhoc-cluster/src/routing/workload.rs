//! Query-workload generators for the serving benchmarks: who talks to
//! whom shapes both throughput (cache behavior of the plan arrays) and
//! stretch (local pairs shortcut, cross-field pairs ride the
//! backbone), so the benches measure more than one mix.

use crate::routing::plan::RoutePlan;
use adhoc_graph::graph::NodeId;
use rand::Rng;

/// A source/target mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mix {
    /// Sources and targets uniform over all routable nodes.
    Uniform,
    /// Uniform sources; targets concentrate on a small hot set (a few
    /// sinks receive most of the traffic — the gateway-stress mix).
    Hotspot {
        /// Fraction of nodes in the hot set (clamped to at least one
        /// node).
        hot_fraction: f64,
        /// Probability a target is drawn from the hot set.
        hot_weight: f64,
    },
    /// Uniform sources; with probability `local_prob` the target lives
    /// in the source's own or a backbone-adjacent cluster (the
    /// neighborhood-gossip mix that exercises ascents and single-link
    /// crossings), otherwise uniform.
    Local {
        /// Probability of a nearby target.
        local_prob: f64,
    },
}

impl Mix {
    /// Display name (`uniform` / `hotspot` / `local`).
    pub fn name(&self) -> &'static str {
        match self {
            Mix::Uniform => "uniform",
            Mix::Hotspot { .. } => "hotspot",
            Mix::Local { .. } => "local",
        }
    }
}

impl std::str::FromStr for Mix {
    type Err = String;

    /// Parses `uniform`, `hotspot` (5% of nodes draw 90% of targets),
    /// or `local` (80% nearby targets) with the benches' defaults.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Ok(Mix::Uniform),
            "hotspot" => Ok(Mix::Hotspot {
                hot_fraction: 0.05,
                hot_weight: 0.9,
            }),
            "local" => Ok(Mix::Local { local_prob: 0.8 }),
            other => Err(format!("unknown mix {other} (uniform|hotspot|local)")),
        }
    }
}

/// Workload generation over a compiled plan (the plan supplies the
/// routable node set, cluster membership, and backbone adjacency the
/// non-uniform mixes need).
#[derive(Debug)]
pub struct Workload {
    routable: Vec<NodeId>,
    /// Members (including the head) per head slot.
    members: Vec<Vec<NodeId>>,
}

impl Workload {
    /// Indexes `plan`'s routable nodes and cluster membership.
    pub fn new(plan: &RoutePlan) -> Workload {
        let mut routable = Vec::new();
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); plan.heads().len()];
        for u in (0..plan.node_count() as u32).map(NodeId) {
            if let Some((slot, _)) = plan.affiliation(u) {
                routable.push(u);
                members[slot].push(u);
            }
        }
        Workload { routable, members }
    }

    /// Number of routable nodes.
    pub fn routable_nodes(&self) -> usize {
        self.routable.len()
    }

    /// Draws `count` query pairs under `mix`. Self-pairs are resampled
    /// a few times (and kept if the resamples keep colliding, which
    /// only happens on degenerate one-node inputs).
    ///
    /// # Panics
    /// Panics if the plan had no routable nodes.
    pub fn generate<R: Rng>(
        &self,
        plan: &RoutePlan,
        mix: Mix,
        count: usize,
        rng: &mut R,
    ) -> Vec<(NodeId, NodeId)> {
        assert!(!self.routable.is_empty(), "no routable nodes to query");
        let uniform = |rng: &mut R| self.routable[rng.gen_range(0..self.routable.len())];
        // Hot set: a partial Fisher-Yates draw, fixed for the batch.
        let hot: Vec<NodeId> = match mix {
            Mix::Hotspot { hot_fraction, .. } => {
                let m = ((self.routable.len() as f64 * hot_fraction).ceil() as usize)
                    .clamp(1, self.routable.len());
                let mut pool = self.routable.clone();
                for i in 0..m {
                    let j = rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                }
                pool.truncate(m);
                pool
            }
            _ => Vec::new(),
        };
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let u = uniform(rng);
            let mut v = u;
            for _ in 0..8 {
                v = match mix {
                    Mix::Uniform => uniform(rng),
                    Mix::Hotspot { hot_weight, .. } => {
                        if rng.gen_bool(hot_weight.clamp(0.0, 1.0)) {
                            hot[rng.gen_range(0..hot.len())]
                        } else {
                            uniform(rng)
                        }
                    }
                    Mix::Local { local_prob } => {
                        if rng.gen_bool(local_prob.clamp(0.0, 1.0)) {
                            self.nearby(plan, u, rng)
                        } else {
                            uniform(rng)
                        }
                    }
                };
                if v != u {
                    break;
                }
            }
            pairs.push((u, v));
        }
        pairs
    }

    /// A member of `u`'s own cluster or of a backbone-adjacent one.
    fn nearby<R: Rng>(&self, plan: &RoutePlan, u: NodeId, rng: &mut R) -> NodeId {
        let (slot, _) = plan.affiliation(u).expect("sources are routable");
        let neighbors = plan.backbone_neighbors(slot);
        let pick = rng.gen_range(0..neighbors.len() + 1);
        let cluster = if pick == 0 {
            slot
        } else {
            neighbors[pick - 1] as usize
        };
        let members = &self.members[cluster];
        members[rng.gen_range(0..members.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::pipeline::{self, EvalScratch};
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(n: usize, seed: u64) -> RoutePlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&gen::GeometricConfig::new(n, 100.0, 7.0), &mut rng);
        let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let eval = pipeline::run_all_with(&net.graph, &c, &mut scratch);
        RoutePlan::compile(&net.graph, &c, scratch.labels(), eval.ac_graph.links())
    }

    #[test]
    fn mixes_parse_and_name() {
        assert_eq!("uniform".parse::<Mix>().unwrap(), Mix::Uniform);
        assert!(matches!("HOTSPOT".parse::<Mix>().unwrap(), Mix::Hotspot { .. }));
        assert!(matches!("local".parse::<Mix>().unwrap(), Mix::Local { .. }));
        assert!("zipf".parse::<Mix>().is_err());
        assert_eq!(Mix::Uniform.name(), "uniform");
        assert_eq!("hotspot".parse::<Mix>().unwrap().name(), "hotspot");
        assert_eq!("local".parse::<Mix>().unwrap().name(), "local");
    }

    #[test]
    fn uniform_pairs_are_in_range_and_mostly_distinct() {
        let plan = plan_for(60, 3);
        let wl = Workload::new(&plan);
        assert_eq!(wl.routable_nodes(), 60);
        let mut rng = StdRng::seed_from_u64(4);
        let pairs = wl.generate(&plan, Mix::Uniform, 500, &mut rng);
        assert_eq!(pairs.len(), 500);
        let distinct = pairs.iter().filter(|(u, v)| u != v).count();
        assert!(distinct > 490, "resampling must suppress self-pairs");
        for &(u, v) in &pairs {
            assert!(u.index() < 60 && v.index() < 60);
        }
    }

    #[test]
    fn hotspot_concentrates_targets() {
        let plan = plan_for(80, 5);
        let wl = Workload::new(&plan);
        let mut rng = StdRng::seed_from_u64(6);
        let mix = Mix::Hotspot {
            hot_fraction: 0.05,
            hot_weight: 0.9,
        };
        let pairs = wl.generate(&plan, mix, 2000, &mut rng);
        // The top-4 most-hit targets should absorb well over the
        // uniform share (4/80 = 5% of 2000 = 100 hits).
        let mut hits = vec![0usize; 80];
        for &(_, v) in &pairs {
            hits[v.index()] += 1;
        }
        hits.sort_unstable_by(|a, b| b.cmp(a));
        let top4: usize = hits[..4].iter().sum();
        assert!(top4 > 1000, "hot set absorbed only {top4}/2000 targets");
    }

    #[test]
    fn local_mix_prefers_nearby_clusters() {
        let plan = plan_for(100, 7);
        let wl = Workload::new(&plan);
        let mut rng = StdRng::seed_from_u64(8);
        let pairs = wl.generate(&plan, Mix::Local { local_prob: 0.9 }, 1000, &mut rng);
        let mut nearby = 0usize;
        for &(u, v) in &pairs {
            let (su, _) = plan.affiliation(u).unwrap();
            let (sv, _) = plan.affiliation(v).unwrap();
            if su == sv || plan.backbone_neighbors(su).contains(&(sv as u32)) {
                nearby += 1;
            }
        }
        assert!(nearby > 700, "only {nearby}/1000 pairs were local");
    }
}
