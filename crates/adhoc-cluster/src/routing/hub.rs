//! Hub-labeling (2-level landmark) index over the backbone `G''` — the
//! sub-quadratic alternative to the dense `h × h` next-hop matrix
//! behind the crate-private `InterTable` facade.
//!
//! # Construction: rank-restricted pruned sweeps
//!
//! Heads are ordered by importance — a recursive BFS-level separator
//! decomposition of the unweighted link adjacency (see `hub_order`:
//! coarse separators rank highest, degree and a deterministic slot
//! scramble break ties within a band) — and every head becomes a hub.
//! The sweep from hub `c` is a Dijkstra whose **interior** is
//! restricted to heads strictly less important than `c`:
//! more-important heads are settled (so the frontier stays bounded)
//! but never expanded. The sweep therefore computes
//!
//! ```text
//! d_c(v) = min { len(P) : P is a c ⇝ v path whose interior heads all
//!                rank below c }
//! ```
//!
//! and records the entry `(hub = c, dist = d_c(v))` at every reached
//! `v` that ranks below `c` (plus `c`'s own zero self-entry). Entries
//! at more-important heads are skipped: they can never be the witness
//! of any query (see below), so storing them would be pure bloat.
//!
//! # Exactness
//!
//! For any connected pair `(u, v)` let `c*` be the most important head
//! on some shortest `u ⇝ v` route. Both legs `c* ⇝ u` and `c* ⇝ v` are
//! shortest subpaths whose interiors rank below `c*`, so the sweep
//! from `c*` records exact leg distances at `u` and `v` (or a
//! self-entry when one endpoint *is* `c*`). Hence
//!
//! ```text
//! dist(u, v) = min over common hubs c of d_c(u) + d_c(v)
//! ```
//!
//! meets `len(shortest route)` at `c*`, and never dips below it
//! because every `d_c` is a real walk length (`d_c ≥ true distance`,
//! then the triangle inequality). Disconnected pairs share no hub.
//! Exact distances are what let `HubIndex::next_hop`
//! reproduce the canonical dense rule bit-for-bit: scan `s`'s CSR row
//! (ascending slot order) and return the first neighbor `u` with
//! `w(s, u) + dist(u, t) = dist(s, t)`.
//!
//! # Why repair is possible at all
//!
//! Pruning depends only on the **static rank order** — never on other
//! hubs' labels — so each hub's entry set is a pure function of
//! `(backbone, order)` and hubs can be re-swept independently without
//! the cascades query-pruned labelings (PLL) suffer. A hub `c` can
//! only be affected by a changed edge `(x, y)` if some affected
//! restricted path crosses that edge, which forces `x` (or `y`) to be
//! `c` itself or an interior/terminal head ranking below `c` — and in
//! either case `x` holds an entry for `c` in the **old** labels (for
//! additions, apply the argument to the first changed edge along the
//! new path: its near endpoint is reached via old edges only). That
//! yields the sound dirty test mirroring `HeadLabels::dirty_slots`:
//!
//! > hub `c` is dirty ⟺ some changed-edge endpoint's old label row
//! > contains `c`.
//!
//! Clean hubs' entry sets are untouched, so re-sweeping exactly the
//! dirty hubs and splicing rows segment-wise reproduces a fresh build
//! **structurally** (`PartialEq`) — provided the importance order
//! itself survived, which `HubIndex::repair` verifies by
//! recomputing it (the order reads only the link *adjacency*, so
//! weight-only churn always takes the cheap path).

use super::inter::{CsrView, InterScratch, FAR, NO_HOP};
use adhoc_graph::par;

/// Dirty-hub fraction above which `HubIndex::repair` declines and
/// the caller rebuilds from scratch — same 50% knee as the label
/// pipeline's `DIRTY_FRACTION_FALLBACK`.
pub const HUB_DIRTY_FRACTION_FALLBACK: f64 = 0.5;

/// Flat-arena hub-label index: per-head rows of `(hub, dist)` entries,
/// CSR-packed and sorted by hub slot so queries are two-pointer
/// merges. Structural equality (`PartialEq`) is meaningful: a repaired
/// index equals a freshly built one entry-for-entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HubIndex {
    h: usize,
    /// Head slots in importance order (separator decomposition,
    /// coarsest band first — see [`hub_order`]).
    order: Vec<u32>,
    /// `rank[slot]` = position of `slot` in `order` (0 = most important).
    rank: Vec<u32>,
    /// Row offsets, `h + 1` entries.
    label_off: Vec<u32>,
    /// Hub slots per row, ascending.
    label_hub: Vec<u32>,
    /// Restricted distance to the matching hub.
    label_dist: Vec<u32>,
}

/// Fixed bijective scramble (splitmix64 finalizer) used as the
/// importance tie break within a separator group. Backbone degrees are
/// near-uniform on geometric graphs and head slots correlate with
/// spatial position, so breaking ties by raw slot would rank heads
/// along a spatial axis; scrambled ties behave like random ranks
/// instead.
fn mix(slot: u32) -> u64 {
    let mut z = u64::from(slot).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Parts at or below this size skip the separator machinery and are
/// emitted whole (degree desc, scrambled slot).
const SEPARATOR_LEAF: usize = 8;

/// Importance order over the backbone: a recursive **BFS-level
/// separator decomposition** (centroid style — coarse separators are
/// the most important hubs, leaves the least).
///
/// Backbone graphs here are geometric meshes — grid-like metrics with
/// `Θ(√h)`-wide balanced separators and *no* degree hierarchy for a
/// degree ordering to exploit (degree ordering degenerates to a random
/// order, whose restricted trees overlap massively and blow labels up
/// ~10×). Separator ranks instead bound every label row by the
/// separator widths of the enclosing cells, `Σᵢ √(h/2ⁱ) = O(√h)`:
///
/// 1. a part's BFS (from the far end of a double sweep, within the
///    part) is cut at the **median visit level**; that level's nodes
///    are the next most important hubs (ordered degree desc, scrambled
///    slot within the group);
/// 2. removing them splits the part; the remainders recurse,
///    breadth-first so sibling separators share a coarseness tier.
///
/// The decomposition reads only the **link adjacency**, never the
/// weights, so weight-only churn recomputes the identical order and
/// [`HubIndex::repair`] keeps its cheap path (the order check mirrors
/// how degree-based ranks survived weight changes).
fn hub_order(csr: CsrView<'_>) -> Vec<u32> {
    const UNSEEN: u32 = u32::MAX;
    const DONE: u32 = u32::MAX - 1;
    let h = csr.head_count();
    let mut order: Vec<u32> = Vec::with_capacity(h);
    if h == 0 {
        return order;
    }
    // Part membership by token; `level`/`seen` are per-BFS scratch.
    let mut token = vec![UNSEEN; h];
    let mut level = vec![0u32; h];
    let mut seen = vec![0u32; h];
    let mut epoch = 0u32;
    let mut bfs = std::collections::VecDeque::new();
    let mut vis: Vec<u32> = Vec::with_capacity(h);
    // One unweighted BFS from `s` over nodes with `token == t`, filling
    // `vis` (visit order) and `level`.
    let mut sweep = |s: u32,
                     t: u32,
                     epoch: u32,
                     token: &[u32],
                     level: &mut [u32],
                     seen: &mut [u32],
                     vis: &mut Vec<u32>| {
        vis.clear();
        bfs.clear();
        seen[s as usize] = epoch;
        level[s as usize] = 0;
        bfs.push_back(s);
        while let Some(u) = bfs.pop_front() {
            vis.push(u);
            for (v, _) in csr.row(u as usize) {
                if token[v as usize] == t && seen[v as usize] != epoch {
                    seen[v as usize] = epoch;
                    level[v as usize] = level[u as usize] + 1;
                    bfs.push_back(v);
                }
            }
        }
    };
    let emit = |part: &mut Vec<u32>, order: &mut Vec<u32>| {
        part.sort_unstable_by_key(|&s| (std::cmp::Reverse(csr.degree(s as usize)), mix(s)));
        order.append(part);
    };
    // Seed the worklist with the connected components, smallest slot
    // first; FIFO processing keeps coarse separators ahead of fine.
    let mut parts: std::collections::VecDeque<(Vec<u32>, u32)> = std::collections::VecDeque::new();
    let mut next_token = 0u32;
    for s in 0..h as u32 {
        if token[s as usize] != UNSEEN {
            continue;
        }
        let t = next_token;
        next_token += 1;
        let mut comp = vec![s];
        token[s as usize] = t;
        let mut i = 0usize;
        while i < comp.len() {
            let u = comp[i];
            i += 1;
            for (v, _) in csr.row(u as usize) {
                if token[v as usize] == UNSEEN {
                    token[v as usize] = t;
                    comp.push(v);
                }
            }
        }
        parts.push_back((comp, t));
    }
    while let Some((mut part, t)) = parts.pop_front() {
        if part.len() <= SEPARATOR_LEAF {
            for &v in &part {
                token[v as usize] = DONE;
            }
            emit(&mut part, &mut order);
            continue;
        }
        // Double sweep: BFS from the smallest slot, restart from the
        // farthest node found (deterministic ties: smallest scramble).
        let s0 = *part.iter().min().expect("part is non-empty");
        epoch += 1;
        sweep(s0, t, epoch, &token, &mut level, &mut seen, &mut vis);
        let far = *vis
            .iter()
            .max_by_key(|&&v| (level[v as usize], std::cmp::Reverse(mix(v))))
            .expect("part is non-empty");
        epoch += 1;
        sweep(far, t, epoch, &token, &mut level, &mut seen, &mut vis);
        debug_assert_eq!(vis.len(), part.len(), "part must be connected");
        // Cut at the median visit level; that band separates the
        // closer half from the farther.
        let cut = level[vis[vis.len() / 2] as usize];
        let mut sep: Vec<u32> = part
            .iter()
            .copied()
            .filter(|&v| level[v as usize] == cut)
            .collect();
        if sep.len() == part.len() {
            for &v in &part {
                token[v as usize] = DONE;
            }
            emit(&mut part, &mut order);
            continue;
        }
        for &v in &sep {
            token[v as usize] = DONE;
        }
        emit(&mut sep, &mut order);
        // Flood-fill the remainders (still tokened `t`) into new
        // parts, scanning in part order for determinism.
        for &v in &part {
            if token[v as usize] != t {
                continue; // separator, or claimed by a sibling below
            }
            let nt = next_token;
            next_token += 1;
            let mut comp = vec![v];
            token[v as usize] = nt;
            let mut i = 0usize;
            while i < comp.len() {
                let u = comp[i];
                i += 1;
                for (w, _) in csr.row(u as usize) {
                    if token[w as usize] == t {
                        token[w as usize] = nt;
                        comp.push(w);
                    }
                }
            }
            parts.push_back((comp, nt));
        }
    }
    debug_assert_eq!(order.len(), h);
    order
}

impl HubIndex {
    /// Serial [`Self::build_with`] (test convenience).
    #[cfg(test)]
    pub(crate) fn build(csr: CsrView<'_>, scratch: &mut InterScratch) -> HubIndex {
        HubIndex::build_with(csr, scratch, 1)
    }

    /// Builds the index for `csr`: one rank-restricted sweep per head,
    /// most important first, entries packed into the CSR arena.
    ///
    /// Over a worker pool: hubs are chunked in rank
    /// order and swept with per-worker scratch. Each hub's entry set is
    /// a pure function of `(backbone, order)` — the same independence
    /// that makes repair possible — and the entry sort key `(node, hub)`
    /// is unique per entry, so the normalizing `sort_unstable` makes
    /// the packed arena bit-identical for any worker count.
    pub(crate) fn build_with(
        csr: CsrView<'_>,
        scratch: &mut InterScratch,
        workers: usize,
    ) -> HubIndex {
        let h = csr.head_count();
        let order = hub_order(csr);
        let mut rank = vec![0u32; h];
        for (r, &slot) in order.iter().enumerate() {
            rank[slot as usize] = r as u32;
        }
        let entries = sweep_hubs(csr, &order, &rank, scratch, workers);
        let mut index = HubIndex {
            h,
            order,
            rank,
            label_off: Vec::new(),
            label_hub: Vec::new(),
            label_dist: Vec::new(),
        };
        index.fill_arena(&entries);
        index
    }

    fn fill_arena(&mut self, entries: &[(u32, u32, u32)]) {
        self.label_off.clear();
        self.label_off.reserve(self.h + 1);
        self.label_hub.clear();
        self.label_hub.reserve(entries.len());
        self.label_dist.clear();
        self.label_dist.reserve(entries.len());
        self.label_off.push(0);
        let mut i = 0usize;
        for v in 0..self.h as u32 {
            while i < entries.len() && entries[i].0 == v {
                self.label_hub.push(entries[i].1);
                self.label_dist.push(entries[i].2);
                i += 1;
            }
            self.label_off.push(self.label_hub.len() as u32);
        }
        debug_assert_eq!(i, entries.len());
    }

    fn row(&self, v: usize) -> (usize, usize) {
        (self.label_off[v] as usize, self.label_off[v + 1] as usize)
    }

    /// Exact backbone distance between heads `u` and `v` ([`FAR`] when
    /// the backbone does not connect them): a two-pointer merge of the
    /// two label rows over their common hubs.
    pub(crate) fn dist(&self, u: usize, v: usize) -> u32 {
        if u == v {
            return 0;
        }
        let (mut i, iend) = self.row(u);
        let (mut j, jend) = self.row(v);
        let mut best = FAR;
        while i < iend && j < jend {
            match self.label_hub[i].cmp(&self.label_hub[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let d = self.label_dist[i] + self.label_dist[j];
                    best = best.min(d);
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// The canonical first hop from `s` toward `t`: the smallest-slot
    /// neighbor of `s` beginning a shortest route. Because label
    /// distances are exact and the CSR row is slot-ascending, this is
    /// bit-identical to the dense table's answer.
    pub(crate) fn next_hop(&self, s: usize, t: usize, csr: CsrView<'_>) -> u32 {
        if s == t {
            return s as u32;
        }
        let dt = self.dist(s, t);
        if dt == FAR {
            return NO_HOP;
        }
        for (u, w) in csr.row(s) {
            if w > dt {
                continue;
            }
            let du = self.dist(u as usize, t);
            if du != FAR && w + du == dt {
                return u;
            }
        }
        debug_assert!(false, "reachable target must have a first-hop witness");
        NO_HOP
    }

    /// Incremental repair after the backbone changed: `changed` holds
    /// the head slots whose CSR rows differ (both endpoints of every
    /// added/removed/re-weighted link) and `csr` is the new backbone.
    ///
    /// Returns `Some(dirty hubs re-swept)` on success. Returns `None`
    /// — caller must rebuild — when the importance order itself
    /// changed (repair could no longer equal a fresh build) or the
    /// dirty fraction crosses [`HUB_DIRTY_FRACTION_FALLBACK`].
    #[cfg(test)]
    pub(crate) fn repair(
        &mut self,
        changed: &[u32],
        csr: CsrView<'_>,
        scratch: &mut InterScratch,
    ) -> Option<usize> {
        self.repair_with(changed, csr, scratch, 1)
    }

    /// As the serial repair, but the dirty-hub re-sweeps fan out across
    /// `workers` (see [`Self::build_with`] for why the result is
    /// bit-identical); the dirty test, order check, and segment-wise
    /// splice stay serial.
    pub(crate) fn repair_with(
        &mut self,
        changed: &[u32],
        csr: CsrView<'_>,
        scratch: &mut InterScratch,
        workers: usize,
    ) -> Option<usize> {
        debug_assert_eq!(self.h, csr.head_count());
        if hub_order(csr) != self.order {
            return None;
        }
        let mut dirty = vec![false; self.h];
        let mut dirty_count = 0usize;
        for &x in changed {
            let (lo, hi) = self.row(x as usize);
            for &c in &self.label_hub[lo..hi] {
                if !dirty[c as usize] {
                    dirty[c as usize] = true;
                    dirty_count += 1;
                }
            }
        }
        if dirty_count == 0 {
            return Some(0);
        }
        if dirty_count as f64 >= HUB_DIRTY_FRACTION_FALLBACK * self.h as f64 {
            return None;
        }
        // Re-sweep exactly the dirty hubs against the new backbone.
        let dirty_hubs: Vec<u32> = self
            .order
            .iter()
            .copied()
            .filter(|&c| dirty[c as usize])
            .collect();
        let fresh = sweep_hubs(csr, &dirty_hubs, &self.rank, scratch, workers);
        // Segment-wise splice: per row, drop old dirty-hub entries and
        // merge in the fresh ones (both sides hub-ascending), leaving
        // clean entries byte-identical — the labels.rs clean-row-copy
        // idiom.
        let mut off = Vec::with_capacity(self.h + 1);
        let mut hubs = Vec::with_capacity(self.label_hub.len());
        let mut dists = Vec::with_capacity(self.label_dist.len());
        off.push(0u32);
        let mut fi = 0usize;
        for v in 0..self.h {
            let (lo, hi) = self.row(v);
            let mut oi = lo;
            let fstart = fi;
            while fi < fresh.len() && fresh[fi].0 as usize == v {
                fi += 1;
            }
            let mut fj = fstart;
            loop {
                while oi < hi && dirty[self.label_hub[oi] as usize] {
                    oi += 1;
                }
                let take_old = match (oi < hi, fj < fi) {
                    (false, false) => break,
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => self.label_hub[oi] < fresh[fj].1,
                };
                if take_old {
                    hubs.push(self.label_hub[oi]);
                    dists.push(self.label_dist[oi]);
                    oi += 1;
                } else {
                    hubs.push(fresh[fj].1);
                    dists.push(fresh[fj].2);
                    fj += 1;
                }
            }
            off.push(hubs.len() as u32);
        }
        debug_assert_eq!(fi, fresh.len());
        self.label_off = off;
        self.label_hub = hubs;
        self.label_dist = dists;
        Some(dirty_count)
    }

    /// Number of heads the index covers.
    pub fn head_count(&self) -> usize {
        self.h
    }

    /// Total label entries across all rows (the sub-quadratic quantity
    /// the benches report against `h²`).
    pub fn label_entries(&self) -> usize {
        self.label_hub.len()
    }

    /// Heap bytes of the arenas.
    pub fn memory_bytes(&self) -> usize {
        let u32s = self.order.capacity()
            + self.rank.capacity()
            + self.label_off.capacity()
            + self.label_hub.capacity()
            + self.label_dist.capacity();
        u32s * std::mem::size_of::<u32>()
    }
}

/// One rank-restricted sweep from hub `c`, appending its `(node, hub,
/// dist)` entries: every reached head ranking below `c`, plus the zero
/// self-entry.
/// Sweeps every hub in `hubs` and returns the combined entry list,
/// sorted by `(node, hub)` — ready for [`HubIndex::fill_arena`] or the
/// repair splice. At 1 worker (or a single hub) the caller's warm
/// scratch is reused inline; otherwise `hubs` is chunked across scoped
/// workers, each with a fresh [`InterScratch`], and the fragments are
/// concatenated in chunk order before the normalizing sort. Entry keys
/// are unique per `(node, hub)` pair, so the sorted list — and the
/// arena packed from it — is bit-identical for any worker count.
fn sweep_hubs(
    csr: CsrView<'_>,
    hubs: &[u32],
    rank: &[u32],
    scratch: &mut InterScratch,
    workers: usize,
) -> Vec<(u32, u32, u32)> {
    let mut entries: Vec<(u32, u32, u32)> = if workers <= 1 || hubs.len() < 2 {
        let mut entries = Vec::new();
        for &c in hubs {
            sweep_hub(csr, c, rank, scratch, &mut entries);
        }
        entries
    } else {
        par::scoped_chunks(workers, hubs.len(), hubs, |_, _, chunk: &[u32]| {
            let mut local = InterScratch::new();
            let mut entries = Vec::new();
            for &c in chunk {
                sweep_hub(csr, c, rank, &mut local, &mut entries);
            }
            entries
        })
        .into_iter()
        .flatten()
        .collect()
    };
    entries.sort_unstable();
    entries
}

fn sweep_hub(
    csr: CsrView<'_>,
    c: u32,
    rank: &[u32],
    scratch: &mut InterScratch,
    entries: &mut Vec<(u32, u32, u32)>,
) {
    let r = rank[c as usize];
    scratch.sweep(csr, c as usize, Some((rank, r)));
    for &v in scratch.settled() {
        if v == c || rank[v as usize] > r {
            entries.push((v, c, scratch.dist(v as usize)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    struct Backbone {
        off: Vec<u32>,
        to: Vec<u32>,
        hops: Vec<u32>,
        adj: Vec<Vec<(u32, u32)>>,
    }

    impl Backbone {
        fn csr(&self) -> CsrView<'_> {
            CsrView {
                off: &self.off,
                to: &self.to,
                hops: &self.hops,
            }
        }

        fn from_adj(adj: Vec<Vec<(u32, u32)>>) -> Backbone {
            let mut off = vec![0u32];
            let mut to = Vec::new();
            let mut hops = Vec::new();
            for nbrs in &adj {
                let mut sorted = nbrs.clone();
                sorted.sort_unstable();
                for &(t, w) in &sorted {
                    to.push(t);
                    hops.push(w);
                }
                off.push(to.len() as u32);
            }
            Backbone { off, to, hops, adj }
        }

        fn random(rng: &mut StdRng, h: usize, p: f64) -> Backbone {
            let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); h];
            for a in 0..h {
                for b in a + 1..h {
                    if rng.gen_bool(p) {
                        let w = rng.gen_range(1..6u32);
                        adj[a].push((b as u32, w));
                        adj[b].push((a as u32, w));
                    }
                }
            }
            Backbone::from_adj(adj)
        }

        /// Changes one existing undirected edge's weight; returns the
        /// flagged endpoints, or `None` if the graph has no edges.
        fn perturb(&mut self, rng: &mut StdRng) -> Option<Vec<u32>> {
            let edges: Vec<(usize, usize)> = self
                .adj
                .iter()
                .enumerate()
                .flat_map(|(a, nbrs)| {
                    nbrs.iter()
                        .filter(move |&&(b, _)| (b as usize) > a)
                        .map(move |&(b, _)| (a, b as usize))
                })
                .collect();
            if edges.is_empty() {
                return None;
            }
            let (a, b) = edges[rng.gen_range(0..edges.len())];
            let w = rng.gen_range(1..9u32);
            for &(x, y) in &[(a, b), (b, a)] {
                for e in &mut self.adj[x] {
                    if e.0 as usize == y {
                        e.1 = w;
                    }
                }
            }
            let rebuilt = Backbone::from_adj(std::mem::take(&mut self.adj));
            *self = rebuilt;
            Some(vec![a as u32, b as u32])
        }
    }

    /// Plain Dijkstra oracle.
    fn oracle_dist(bb: &Backbone, s: usize) -> Vec<u32> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let h = bb.adj.len();
        let mut dist = vec![FAR; h];
        let mut heap = BinaryHeap::new();
        dist[s] = 0;
        heap.push(Reverse((0u32, s as u32)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &bb.adj[u as usize] {
                if d + w < dist[v as usize] {
                    dist[v as usize] = d + w;
                    heap.push(Reverse((d + w, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn distances_are_exact() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut scratch = InterScratch::new();
        for _ in 0..20 {
            let h = rng.gen_range(2..18usize);
            let bb = Backbone::random(&mut rng, h, 0.35);
            let hub = HubIndex::build(bb.csr(), &mut scratch);
            for s in 0..h {
                let want = oracle_dist(&bb, s);
                for (t, &w) in want.iter().enumerate() {
                    assert_eq!(hub.dist(s, t), w, "{s} -> {t}");
                }
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(12);
        let bb = Backbone::random(&mut rng, 12, 0.3);
        let a = HubIndex::build(bb.csr(), &mut InterScratch::new());
        let b = HubIndex::build(bb.csr(), &mut InterScratch::new());
        assert_eq!(a, b);
        for workers in [2usize, 3, 8] {
            let par = HubIndex::build_with(bb.csr(), &mut InterScratch::new(), workers);
            assert_eq!(a, par, "{workers}-worker build diverged from serial");
        }
    }

    #[test]
    fn parallel_repair_matches_serial() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut scratch = InterScratch::new();
        for round in 0..10 {
            let mut bb = Backbone::random(&mut rng, 14, 0.35);
            let baseline = HubIndex::build(bb.csr(), &mut scratch);
            let Some(changed) = bb.perturb(&mut rng) else {
                continue;
            };
            let mut serial = baseline.clone();
            let want = serial.repair(&changed, bb.csr(), &mut scratch);
            for workers in [2usize, 3, 8] {
                let mut par = baseline.clone();
                let got = par.repair_with(&changed, bb.csr(), &mut scratch, workers);
                assert_eq!(got, want, "round {round}: {workers}-worker repair verdict");
                if want.is_some() {
                    assert_eq!(par, serial, "round {round}: {workers}-worker repair arena");
                }
            }
        }
    }

    #[test]
    fn repair_equals_rebuild_after_weight_changes() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut scratch = InterScratch::new();
        for round in 0..25 {
            let h = rng.gen_range(3..16usize);
            let mut bb = Backbone::random(&mut rng, h, 0.35);
            let mut hub = HubIndex::build(bb.csr(), &mut scratch);
            for step in 0..4 {
                let Some(changed) = bb.perturb(&mut rng) else {
                    break;
                };
                match hub.repair(&changed, bb.csr(), &mut scratch) {
                    Some(_) => {}
                    None => hub = HubIndex::build(bb.csr(), &mut scratch),
                }
                let fresh = HubIndex::build(bb.csr(), &mut scratch);
                assert_eq!(hub, fresh, "round {round} step {step}");
            }
        }
    }

    #[test]
    fn repair_declines_when_order_changes() {
        // Removing an edge reshapes the link adjacency — here it even
        // splits the backbone — so the separator decomposition moves
        // and repair must hand back a rebuild rather than splice
        // against a stale order.
        let h = 10usize;
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); h];
        for a in 0..h - 1 {
            adj[a].push((a as u32 + 1, 1));
            adj[a + 1].push((a as u32, 1));
        }
        let bb = Backbone::from_adj(adj.clone());
        let mut scratch = InterScratch::new();
        let mut hub = HubIndex::build(bb.csr(), &mut scratch);
        adj[0].retain(|e| e.0 != 1);
        adj[1].retain(|e| e.0 != 0);
        let split = Backbone::from_adj(adj);
        assert_eq!(hub.repair(&[0, 1], split.csr(), &mut scratch), None);
    }

    #[test]
    fn empty_change_set_is_noop() {
        let mut rng = StdRng::seed_from_u64(15);
        let bb = Backbone::random(&mut rng, 8, 0.4);
        let mut scratch = InterScratch::new();
        let mut hub = HubIndex::build(bb.csr(), &mut scratch);
        let before = hub.clone();
        assert_eq!(hub.repair(&[], bb.csr(), &mut scratch), Some(0));
        assert_eq!(hub, before);
    }

    #[test]
    fn disconnected_pairs_share_no_hub() {
        // Two components: {0, 1} and {2}.
        let bb = Backbone::from_adj(vec![vec![(1, 3)], vec![(0, 3)], vec![]]);
        let hub = HubIndex::build(bb.csr(), &mut InterScratch::new());
        assert_eq!(hub.dist(0, 1), 3);
        assert_eq!(hub.dist(0, 2), FAR);
        assert_eq!(hub.next_hop(0, 2, bb.csr()), NO_HOP);
        assert_eq!(hub.next_hop(2, 2, bb.csr()), 2);
    }

    #[test]
    fn localized_change_dirties_few_hubs() {
        // A long path graph: a weight change at one end must not
        // re-sweep hubs whose restricted trees never cross it.
        let h = 40usize;
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); h];
        for a in 0..h - 1 {
            adj[a].push((a as u32 + 1, 1));
            adj[a + 1].push((a as u32, 1));
        }
        let mut bb = Backbone::from_adj(adj);
        let mut scratch = InterScratch::new();
        let mut hub = HubIndex::build(bb.csr(), &mut scratch);
        // Re-weight the last edge (degrees unchanged).
        for e in &mut bb.adj[h - 2] {
            if e.0 as usize == h - 1 {
                e.1 = 3;
            }
        }
        for e in &mut bb.adj[h - 1] {
            if e.0 as usize == h - 2 {
                e.1 = 3;
            }
        }
        let rebuilt = Backbone::from_adj(std::mem::take(&mut bb.adj));
        bb = rebuilt;
        let dirty = hub
            .repair(&[h as u32 - 2, h as u32 - 1], bb.csr(), &mut scratch)
            .expect("weight-only change repairs in place");
        assert!(dirty > 0);
        assert!(dirty < h / 2, "only a tail of hubs re-swept, got {dirty}");
        assert_eq!(hub, HubIndex::build(bb.csr(), &mut scratch));
    }
}
