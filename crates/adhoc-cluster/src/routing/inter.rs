//! Shared inter-head next-hop computation: all-pairs first hops over
//! the backbone graph `G''` (heads as vertices, selected virtual links
//! as weighted edges), used by both the compiled [`RoutePlan`] and the
//! legacy per-query-BFS [`ClusterRouter`] so their inter-cluster
//! decisions are identical by construction.
//!
//! [`RoutePlan`]: super::plan::RoutePlan
//! [`ClusterRouter`]: super::legacy::ClusterRouter
//!
//! Determinism: the shortest-path parent of `t` is the **smallest-slot
//! head** among `t`'s shortest predecessors. That choice is
//! order-independent (every shortest predecessor of `t` settles at a
//! strictly smaller distance, so each one gets to relax `t` exactly
//! once regardless of heap tie-breaking), which is what lets the plan
//! and the legacy router — and incremental repairs versus full
//! recompiles — agree bit-for-bit on every route.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// "No next hop" marker (unreachable target, or an unfilled row).
pub(crate) const NO_HOP: u32 = u32::MAX;

/// Computes `s`'s next-hop row over the weighted head adjacency
/// `adj[slot] = [(neighbor slot, hops)]`: `row[t]` is the first head
/// after `s` on the canonical shortest `s ⇝ t` backbone route (`s`
/// itself for `t == s`, [`NO_HOP`] if `t` is unreachable).
///
/// One binary-heap Dijkstra plus a settled-order first-hop sweep —
/// `O(m log h)` per source with `m` directed links.
pub(crate) fn next_hop_row(adj: &[Vec<(u32, u32)>], s: usize, row: &mut [u32]) {
    let h = adj.len();
    debug_assert_eq!(row.len(), h);
    let mut dist = vec![u64::MAX; h];
    let mut parent = vec![NO_HOP; h];
    let mut settled_order: Vec<u32> = Vec::with_capacity(h);
    let mut settled = vec![false; h];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[s] = 0;
    parent[s] = s as u32;
    heap.push(Reverse((0, s as u32)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let ui = u as usize;
        if settled[ui] {
            continue; // stale heap entry
        }
        settled[ui] = true;
        settled_order.push(u);
        for &(to, w) in &adj[ui] {
            let ti = to as usize;
            let nd = d + u64::from(w);
            if nd < dist[ti] {
                dist[ti] = nd;
                parent[ti] = u;
                heap.push(Reverse((nd, to)));
            } else if nd == dist[ti] && u < parent[ti] {
                // Equal-length alternative through a smaller head slot:
                // adopt the canonical (smallest-predecessor) parent.
                parent[ti] = u;
            }
        }
    }
    row.fill(NO_HOP);
    // First-hop DP in settled (nondecreasing-distance) order: a node
    // whose parent is `s` is its own first hop; anything farther
    // inherits its parent's.
    for &t in &settled_order {
        let ti = t as usize;
        row[ti] = if ti == s {
            s as u32
        } else if parent[ti] == s as u32 {
            t
        } else {
            row[parent[ti] as usize]
        };
    }
}

/// All-pairs next-hop table, row-major `h × h` (`table[s * h + t]`).
pub(crate) fn all_pairs_next_hops(adj: &[Vec<(u32, u32)>]) -> Vec<u32> {
    let h = adj.len();
    let mut table = vec![NO_HOP; h * h];
    for s in 0..h {
        next_hop_row(adj, s, &mut table[s * h..(s + 1) * h]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the seed router's `O(h²)`-scan
    /// Dijkstra with its parent-chain walk, kept verbatim as the
    /// oracle the shared routine must reproduce.
    fn reference_row(adj: &[Vec<(u32, u32)>], s: usize) -> Vec<u32> {
        let m = adj.len();
        let mut dist = vec![u64::MAX; m];
        let mut parent = vec![usize::MAX; m];
        let mut done = vec![false; m];
        dist[s] = 0;
        parent[s] = s;
        for _ in 0..m {
            let mut best = usize::MAX;
            for i in 0..m {
                if !done[i]
                    && dist[i] != u64::MAX
                    && (best == usize::MAX || dist[i] < dist[best])
                {
                    best = i;
                }
            }
            if best == usize::MAX {
                break;
            }
            done[best] = true;
            for &(to, w) in &adj[best] {
                let to = to as usize;
                let nd = dist[best] + u64::from(w);
                if nd < dist[to] || (nd == dist[to] && best < parent[to]) {
                    dist[to] = nd;
                    parent[to] = best;
                }
            }
        }
        let mut row = vec![NO_HOP; m];
        for t in 0..m {
            if t == s {
                row[t] = s as u32;
                continue;
            }
            if parent[t] == usize::MAX {
                continue;
            }
            let mut cur = t;
            while parents_ok(parent[cur], s) {
                cur = parent[cur];
            }
            row[t] = cur as u32;
        }
        row
    }

    fn parents_ok(p: usize, s: usize) -> bool {
        p != s
    }

    #[test]
    fn matches_reference_on_random_backbones() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let h = rng.gen_range(2..14usize);
            let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); h];
            for a in 0..h {
                for b in a + 1..h {
                    if rng.gen_bool(0.4) {
                        let w = rng.gen_range(1..6u32);
                        adj[a].push((b as u32, w));
                        adj[b].push((a as u32, w));
                    }
                }
            }
            for s in 0..h {
                let mut row = vec![0u32; h];
                next_hop_row(&adj, s, &mut row);
                assert_eq!(row, reference_row(&adj, s), "source {s}");
            }
        }
    }

    #[test]
    fn disconnected_targets_have_no_hop() {
        let adj: Vec<Vec<(u32, u32)>> = vec![vec![(1, 2)], vec![(0, 2)], vec![]];
        let table = all_pairs_next_hops(&adj);
        assert_eq!(table[1], 1); // 0 -> 1
        assert_eq!(table[2], NO_HOP); // 0 -> 2
        assert_eq!(table[6], NO_HOP); // 2 -> 0
        assert_eq!(table[4], 1); // 1 -> 1 (self)
    }

    #[test]
    fn equal_length_ties_pick_smallest_first_hop_chain() {
        // 0-1-3 and 0-2-3 both cost 2: the canonical route goes via 1.
        let adj: Vec<Vec<(u32, u32)>> = vec![
            vec![(1, 1), (2, 1)],
            vec![(0, 1), (3, 1)],
            vec![(0, 1), (3, 1)],
            vec![(1, 1), (2, 1)],
        ];
        let mut row = vec![0u32; 4];
        next_hop_row(&adj, 0, &mut row);
        assert_eq!(row[3], 1);
    }
}
