//! Shared inter-head first-hop machinery over the backbone graph `G''`
//! (heads as vertices, selected virtual links as weighted edges): the
//! canonical next-hop **rule**, the dense all-pairs table that
//! materializes it, and the [`InterTable`] facade that lets a compiled
//! [`RoutePlan`] serve the same rule from either the dense `h × h`
//! matrix or the sub-quadratic hub-label index ([`HubIndex`]).
//!
//! [`RoutePlan`]: super::plan::RoutePlan
//! [`HubIndex`]: super::hub::HubIndex
//!
//! # The canonical rule
//!
//! `next_hop(s, t)` is the **smallest-slot neighbor of `s` that begins
//! a shortest `s ⇝ t` backbone route**:
//!
//! ```text
//! next_hop(s, t) = min { u ∈ N(s) : w(s, u) + dist(u, t) = dist(s, t) }
//! ```
//!
//! The rule is a pure function of exact backbone distances, which is
//! precisely what lets two very different representations serve it
//! bit-identically: the dense table derives it per source with one
//! Dijkstra plus a settled-order DP (the first hops of `s ⇝ t` are the
//! union over shortest predecessors `p` of `t` of the first hops of
//! `s ⇝ p`, so the minimum propagates), while the hub index answers
//! `dist(·, t)` queries by label merge and scans `s`'s CSR row — which
//! is stored in ascending slot order — for the first qualifying
//! neighbor. Every consumer (the compiled plan, the legacy per-query
//! router, incremental repairs versus full recompiles) therefore
//! agrees on every route by construction.
//!
//! Queries that *walk* (`s ← next_hop(s, t)` until `s = t`) terminate
//! and realize a shortest backbone route for any mix of sources: each
//! step moves to a node strictly closer to `t`.

use super::hub::HubIndex;
use adhoc_graph::par::{self, Strided};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// "No next hop" marker (unreachable target, or an unfilled row).
pub(crate) const NO_HOP: u32 = u32::MAX;

/// "Not reached" backbone distance.
pub(crate) const FAR: u32 = u32::MAX;

/// A borrowed CSR view of the backbone: `off` has `h + 1` entries,
/// `to`/`hops` hold each head's neighbors in **ascending slot order**
/// (both orientations of every undirected link). The plan and the
/// legacy router own these arrays; the inter-head machinery only ever
/// borrows them.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CsrView<'a> {
    pub off: &'a [u32],
    pub to: &'a [u32],
    pub hops: &'a [u32],
}

impl<'a> CsrView<'a> {
    /// Number of heads (vertices of `G''`).
    pub fn head_count(&self) -> usize {
        self.off.len() - 1
    }

    /// `s`'s neighbor row as `(neighbor slot, weight)` pairs, ascending
    /// by slot.
    pub fn row(&self, s: usize) -> impl Iterator<Item = (u32, u32)> + 'a {
        let (lo, hi) = (self.off[s] as usize, self.off[s + 1] as usize);
        self.to[lo..hi]
            .iter()
            .zip(&self.hops[lo..hi])
            .map(|(&t, &w)| (t, w))
    }

    /// `s`'s backbone degree.
    pub fn degree(&self, s: usize) -> usize {
        (self.off[s + 1] - self.off[s]) as usize
    }
}

/// Reusable per-source sweep state shared by the dense all-pairs build
/// and the hub index's pruned sweeps — hoisted out of the per-source
/// loop so neither allocates a heap, a distance array, or a settled
/// list per source (they used to, once per `next_hop_row` call).
#[derive(Clone, Debug, Default)]
pub(crate) struct InterScratch {
    dist: Vec<u32>,
    /// Nodes whose `dist` entry was written this sweep (superset of
    /// `settled`: includes heap-inserted-but-unsettled nodes), for
    /// touched-entry reset.
    touched: Vec<u32>,
    /// Settled nodes in nondecreasing-distance order.
    settled: Vec<u32>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
}

impl InterScratch {
    pub fn new() -> Self {
        InterScratch::default()
    }

    /// Runs a Dijkstra sweep from `s` over `csr`, leaving `dist` and
    /// `settled` valid until the next sweep. With `restrict =
    /// Some((rank, r))` the sweep is **rank-restricted**: nodes whose
    /// rank is below `r` (more important than the source) are settled
    /// but never expanded, so computed distances are minima over paths
    /// whose *interior* stays less important than the source — the hub
    /// index's pruning rule (see [`HubIndex`]).
    pub(crate) fn sweep(&mut self, csr: CsrView<'_>, s: usize, restrict: Option<(&[u32], u32)>) {
        let h = csr.head_count();
        if self.dist.len() < h {
            self.dist.resize(h, FAR);
        }
        for &v in &self.touched {
            self.dist[v as usize] = FAR;
        }
        self.touched.clear();
        self.settled.clear();
        self.heap.clear();
        self.dist[s] = 0;
        self.touched.push(s as u32);
        self.heap.push(Reverse((0, s as u32)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            let ui = u as usize;
            if d > self.dist[ui] {
                continue; // stale heap entry
            }
            self.settled.push(u);
            if let Some((rank, r)) = restrict {
                if ui != s && rank[ui] < r {
                    continue; // settled, not expanded: pruned frontier
                }
            }
            for (to, w) in csr.row(ui) {
                let ti = to as usize;
                debug_assert!(w >= 1, "virtual links span at least one hop");
                let nd = d + w;
                if nd < self.dist[ti] {
                    if self.dist[ti] == FAR {
                        self.touched.push(to);
                    }
                    self.dist[ti] = nd;
                    self.heap.push(Reverse((nd, to)));
                }
            }
        }
    }

    /// Distance of the last sweep (valid until the next one).
    pub(crate) fn dist(&self, v: usize) -> u32 {
        self.dist[v]
    }

    /// Settled order of the last sweep.
    pub(crate) fn settled(&self) -> &[u32] {
        &self.settled
    }
}

/// Computes `s`'s next-hop row under the canonical rule: `row[t]` is
/// the smallest-slot first hop of a shortest `s ⇝ t` backbone route
/// (`s` itself for `t == s`, [`NO_HOP`] if `t` is unreachable).
///
/// One binary-heap Dijkstra plus a settled-order DP — the set of first
/// hops of `s ⇝ t` is the union over shortest predecessors `p` of `t`
/// of the first hops of `s ⇝ p` (plus `t` itself when `(s, t)` is an
/// edge on a shortest route), so the minimum propagates along settled
/// order. `O(m log h)` per source with `m` directed links.
pub(crate) fn next_hop_row(csr: CsrView<'_>, s: usize, row: &mut [u32], scratch: &mut InterScratch) {
    debug_assert_eq!(row.len(), csr.head_count());
    scratch.sweep(csr, s, None);
    row.fill(NO_HOP);
    for &t in scratch.settled() {
        let ti = t as usize;
        if ti == s {
            row[ti] = s as u32;
            continue;
        }
        let dt = scratch.dist(ti);
        let mut best = NO_HOP;
        for (p, w) in csr.row(ti) {
            let pi = p as usize;
            if scratch.dist(pi) != FAR && scratch.dist(pi) + w == dt {
                // `p` is a shortest predecessor of `t`; it settled at a
                // strictly smaller distance, so `row[p]` is final.
                let candidate = if pi == s { t } else { row[pi] };
                best = best.min(candidate);
            }
        }
        debug_assert_ne!(best, NO_HOP, "settled node must have a shortest predecessor");
        row[ti] = best;
    }
}

/// All-pairs next-hop table, row-major `h × h` (`table[s * h + t]`).
pub(crate) fn all_pairs_next_hops(csr: CsrView<'_>, scratch: &mut InterScratch) -> Vec<u32> {
    all_pairs_next_hops_with(csr, scratch, 1)
}

/// [`all_pairs_next_hops`] over a worker pool: sources are chunked and
/// each worker writes its own contiguous row range with its own
/// [`InterScratch`]. Every row is a pure function of `(csr, s)`, so the
/// table is bit-identical for any worker count; at 1 worker the
/// caller's warm scratch is reused and no threads spawn.
pub(crate) fn all_pairs_next_hops_with(
    csr: CsrView<'_>,
    scratch: &mut InterScratch,
    workers: usize,
) -> Vec<u32> {
    let h = csr.head_count();
    let mut table = vec![NO_HOP; h * h];
    if workers <= 1 || h < 2 {
        for s in 0..h {
            next_hop_row(csr, s, &mut table[s * h..(s + 1) * h], scratch);
        }
    } else {
        par::scoped_chunks(
            workers,
            h,
            Strided::new(&mut table[..], h),
            |off, take, chunk: Strided<&mut [u32]>| {
                let mut local = InterScratch::new();
                for i in 0..take {
                    next_hop_row(csr, off + i, &mut chunk.data[i * h..(i + 1) * h], &mut local);
                }
            },
        );
    }
    table
}

/// Projected bytes of the dense `h × h` next-hop table — what
/// [`InterMode::Auto`] weighs against, and what the benches report as
/// the cost the hub layout avoids.
pub fn projected_dense_bytes(h: usize) -> usize {
    h.saturating_mul(h).saturating_mul(std::mem::size_of::<u32>())
}

/// Projected dense-table size above which [`InterMode::Auto`] compiles
/// the hub-label index instead of the `h × h` matrix. 4 MiB keeps the
/// paper-scale backbones (`h` up to ~1000, where the table is small
/// and its `O(1)` lookups win) dense, while the `N ≥ 10⁴`-node cells'
/// multi-thousand-head backbones land on hub labels.
pub const AUTO_HUB_THRESHOLD_BYTES: usize = 4 << 20;

/// Which inter-head representation a route plan should compile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InterMode {
    /// Always the dense `h × h` next-hop matrix.
    Dense,
    /// Always the hub-label index.
    Hub,
    /// Decide per compile: hub once the projected dense table exceeds
    /// [`AUTO_HUB_THRESHOLD_BYTES`].
    #[default]
    Auto,
}

impl InterMode {
    /// Whether a compile over an `h`-head backbone should use the hub
    /// layout under this mode.
    pub fn wants_hub(self, h: usize) -> bool {
        match self {
            InterMode::Dense => false,
            InterMode::Hub => true,
            InterMode::Auto => projected_dense_bytes(h) > AUTO_HUB_THRESHOLD_BYTES,
        }
    }

    /// Display name (`dense` / `hub` / `auto`).
    pub fn name(self) -> &'static str {
        match self {
            InterMode::Dense => "dense",
            InterMode::Hub => "hub",
            InterMode::Auto => "auto",
        }
    }
}

impl std::str::FromStr for InterMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "dense" => Ok(InterMode::Dense),
            "hub" => Ok(InterMode::Hub),
            "auto" => Ok(InterMode::Auto),
            other => Err(format!("unknown inter-table layout {other} (dense|hub|auto)")),
        }
    }
}

/// What an `InterTable::repair` did — surfaced through
/// [`PlanUpdate`](super::plan::PlanUpdate) so benches and tests can
/// pin that a weight change no longer recomputes all pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterRepair {
    /// The backbone's weighted link set did not change; nothing to do.
    Unchanged,
    /// Dense layout: the full `h × h` table was recomputed (the dense
    /// table has no cheaper sound repair).
    DenseRecomputed,
    /// Hub layout: only the labels of hubs whose trees touched a
    /// changed edge were re-swept.
    HubRepaired {
        /// Hubs re-swept (out of `h`).
        dirty_hubs: usize,
    },
    /// Hub layout: the dirty fraction crossed the fallback threshold or
    /// the degree order itself changed, so the index was rebuilt.
    HubRebuilt,
}

/// One API over both inter-head representations, mirroring the label
/// store's `Dense`/`Sparse` facade: the compiled plan queries first
/// hops through this enum and never branches on layout anywhere else.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterTable {
    /// Row-major `h × h` first-hop matrix — `O(1)` lookups, `O(h²)`
    /// memory, full recompute on any backbone weight change.
    Dense { h: usize, next_hop: Vec<u32> },
    /// Hub-label (2-level landmark) index — `O(label merge · degree)`
    /// lookups, empirically sub-quadratic memory, dirty-hub repair.
    Hub(HubIndex),
}

impl InterTable {
    /// Serial [`Self::build_with`] (test convenience).
    #[cfg(test)]
    pub(crate) fn build(mode: InterMode, csr: CsrView<'_>, scratch: &mut InterScratch) -> InterTable {
        InterTable::build_with(mode, csr, scratch, 1)
    }

    /// Builds the representation `mode` selects for this backbone over
    /// a worker pool — parallel all-pairs rows for the dense layout,
    /// parallel pruned hub sweeps for the hub layout. Bit-identical
    /// for any worker count; 1 worker runs inline.
    pub(crate) fn build_with(
        mode: InterMode,
        csr: CsrView<'_>,
        scratch: &mut InterScratch,
        workers: usize,
    ) -> InterTable {
        let h = csr.head_count();
        if mode.wants_hub(h) {
            InterTable::Hub(HubIndex::build_with(csr, scratch, workers))
        } else {
            InterTable::Dense {
                h,
                next_hop: all_pairs_next_hops_with(csr, scratch, workers),
            }
        }
    }

    /// The canonical first hop from `s` toward `t` ([`NO_HOP`] when the
    /// backbone does not connect them; `s` itself for `t == s`).
    #[inline]
    pub(crate) fn next_hop(&self, s: usize, t: usize, csr: CsrView<'_>) -> u32 {
        match self {
            InterTable::Dense { h, next_hop } => next_hop[s * h + t],
            InterTable::Hub(hub) => hub.next_hop(s, t, csr),
        }
    }

    /// Repairs the table after the backbone changed: `changed` holds
    /// the ascending slots whose CSR rows differ between the old and
    /// new backbone (every added, removed, or re-weighted link flags
    /// both endpoints), and `csr` is the **new** backbone. An empty
    /// `changed` is a no-op.
    /// The dense recompute and the dirty-hub re-sweeps fan out across
    /// `workers`, bit-identical to serial for any worker count (1
    /// worker runs inline).
    pub(crate) fn repair_with(
        &mut self,
        changed: &[u32],
        csr: CsrView<'_>,
        scratch: &mut InterScratch,
        workers: usize,
    ) -> InterRepair {
        if changed.is_empty() {
            return InterRepair::Unchanged;
        }
        match self {
            InterTable::Dense { h, next_hop } => {
                debug_assert_eq!(*h, csr.head_count());
                *next_hop = all_pairs_next_hops_with(csr, scratch, workers);
                InterRepair::DenseRecomputed
            }
            InterTable::Hub(hub) => match hub.repair_with(changed, csr, scratch, workers) {
                Some(dirty_hubs) => InterRepair::HubRepaired { dirty_hubs },
                None => {
                    *hub = HubIndex::build_with(csr, scratch, workers);
                    InterRepair::HubRebuilt
                }
            },
        }
    }

    /// Display name of the active layout (`dense` / `hub`).
    pub fn layout_name(&self) -> &'static str {
        match self {
            InterTable::Dense { .. } => "dense",
            InterTable::Hub(_) => "hub",
        }
    }

    /// Heap bytes of the inter-head structure alone.
    pub fn memory_bytes(&self) -> usize {
        match self {
            InterTable::Dense { next_hop, .. } => {
                next_hop.capacity() * std::mem::size_of::<u32>()
            }
            InterTable::Hub(hub) => hub.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle for the canonical rule: Floyd–Warshall
    /// distances, then `min { u ∈ N(s) : w(s,u) + dist(u,t) =
    /// dist(s,t) }` read straight off the definition.
    fn reference_row(adj: &[Vec<(u32, u32)>], s: usize) -> Vec<u32> {
        let h = adj.len();
        let mut dist = vec![vec![u64::MAX / 4; h]; h];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0;
        }
        for (a, nbrs) in adj.iter().enumerate() {
            for &(b, w) in nbrs {
                dist[a][b as usize] = dist[a][b as usize].min(u64::from(w));
            }
        }
        for m in 0..h {
            for a in 0..h {
                for b in 0..h {
                    let via = dist[a][m] + dist[m][b];
                    if via < dist[a][b] {
                        dist[a][b] = via;
                    }
                }
            }
        }
        let mut row = vec![NO_HOP; h];
        for t in 0..h {
            if t == s {
                row[t] = s as u32;
                continue;
            }
            if dist[s][t] >= u64::MAX / 4 {
                continue;
            }
            row[t] = adj[s]
                .iter()
                .filter(|&&(u, w)| u64::from(w) + dist[u as usize][t] == dist[s][t])
                .map(|&(u, _)| u)
                .min()
                .expect("reachable target has a first hop");
        }
        row
    }

    fn to_csr(adj: &[Vec<(u32, u32)>]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut off = vec![0u32];
        let mut to = Vec::new();
        let mut hops = Vec::new();
        for nbrs in adj {
            let mut sorted = nbrs.clone();
            sorted.sort_unstable();
            for (t, w) in sorted {
                to.push(t);
                hops.push(w);
            }
            off.push(to.len() as u32);
        }
        (off, to, hops)
    }

    fn random_adj(rng: &mut impl rand::Rng, h: usize, p: f64) -> Vec<Vec<(u32, u32)>> {
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); h];
        for a in 0..h {
            for b in a + 1..h {
                if rng.gen_bool(p) {
                    let w = rng.gen_range(1..6u32);
                    adj[a].push((b as u32, w));
                    adj[b].push((a as u32, w));
                }
            }
        }
        adj
    }

    #[test]
    fn matches_reference_on_random_backbones() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut scratch = InterScratch::new();
        for _ in 0..30 {
            let h = rng.gen_range(2..14usize);
            let adj = random_adj(&mut rng, h, 0.4);
            let (off, to, hops) = to_csr(&adj);
            let csr = CsrView {
                off: &off,
                to: &to,
                hops: &hops,
            };
            for s in 0..h {
                let mut row = vec![0u32; h];
                next_hop_row(csr, s, &mut row, &mut scratch);
                assert_eq!(row, reference_row(&adj, s), "source {s}");
            }
        }
    }

    /// The hub index must reproduce the dense rows **exactly** — the
    /// bit-identity the route-equivalence suites rest on — including
    /// across reused scratch.
    #[test]
    fn hub_table_matches_dense_table() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4242);
        let mut scratch = InterScratch::new();
        for round in 0..25 {
            let h = rng.gen_range(2..20usize);
            let adj = random_adj(&mut rng, h, 0.3);
            let (off, to, hops) = to_csr(&adj);
            let csr = CsrView {
                off: &off,
                to: &to,
                hops: &hops,
            };
            let dense = InterTable::build(InterMode::Dense, csr, &mut scratch);
            let hub = InterTable::build(InterMode::Hub, csr, &mut scratch);
            for s in 0..h {
                for t in 0..h {
                    assert_eq!(
                        dense.next_hop(s, t, csr),
                        hub.next_hop(s, t, csr),
                        "round {round}: first hop diverged at {s} -> {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_targets_have_no_hop() {
        let adj: Vec<Vec<(u32, u32)>> = vec![vec![(1, 2)], vec![(0, 2)], vec![]];
        let (off, to, hops) = to_csr(&adj);
        let csr = CsrView {
            off: &off,
            to: &to,
            hops: &hops,
        };
        let mut scratch = InterScratch::new();
        let table = all_pairs_next_hops(csr, &mut scratch);
        assert_eq!(table[1], 1); // 0 -> 1
        assert_eq!(table[2], NO_HOP); // 0 -> 2
        assert_eq!(table[6], NO_HOP); // 2 -> 0
        assert_eq!(table[4], 1); // 1 -> 1 (self)
    }

    #[test]
    fn equal_length_ties_pick_smallest_first_hop() {
        // 0-1-3 and 0-2-3 both cost 2: the canonical route leaves via 1.
        let adj: Vec<Vec<(u32, u32)>> = vec![
            vec![(1, 1), (2, 1)],
            vec![(0, 1), (3, 1)],
            vec![(0, 1), (3, 1)],
            vec![(1, 1), (2, 1)],
        ];
        let (off, to, hops) = to_csr(&adj);
        let csr = CsrView {
            off: &off,
            to: &to,
            hops: &hops,
        };
        let mut row = vec![0u32; 4];
        next_hop_row(csr, 0, &mut row, &mut InterScratch::new());
        assert_eq!(row[3], 1);
    }

    /// The rule prefers the smallest *first hop*, even when a larger
    /// first hop leads to a smaller-slot interior (where the old
    /// backward-parent-chain rule would have flipped).
    #[test]
    fn smallest_first_hop_beats_smallest_interior() {
        // 0-1-5-4 and 0-2-3-4, unit weights: first hops 1 < 2 even
        // though interior 3 < 5.
        let adj: Vec<Vec<(u32, u32)>> = vec![
            vec![(1, 1), (2, 1)],
            vec![(0, 1), (5, 1)],
            vec![(0, 1), (3, 1)],
            vec![(2, 1), (4, 1)],
            vec![(3, 1), (5, 1)],
            vec![(1, 1), (4, 1)],
        ];
        let (off, to, hops) = to_csr(&adj);
        let csr = CsrView {
            off: &off,
            to: &to,
            hops: &hops,
        };
        let mut row = vec![0u32; 6];
        next_hop_row(csr, 0, &mut row, &mut InterScratch::new());
        assert_eq!(row[4], 1);
    }

    #[test]
    fn auto_mode_switches_on_projected_bytes() {
        // 4 MiB / 4 bytes = 1M entries: h = 1024 is the last dense size.
        assert!(!InterMode::Auto.wants_hub(1024));
        assert!(InterMode::Auto.wants_hub(1025));
        assert!(!InterMode::Dense.wants_hub(1_000_000));
        assert!(InterMode::Hub.wants_hub(2));
        assert_eq!("hub".parse::<InterMode>().unwrap(), InterMode::Hub);
        assert!("matrix".parse::<InterMode>().is_err());
    }
}
