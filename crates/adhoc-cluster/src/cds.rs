//! The k-hop connected dominating set (CDS) and its verifiers.
//!
//! The paper's end product: clusterheads plus selected gateways form a
//! **k-hop CDS** — every node of `G` is within `k` hops of the set, and
//! the set induces a connected subgraph of `G` (Theorem 2). The size of
//! this set is the headline metric of Figures 5–7.

use crate::clustering::Clustering;
use crate::gateway::GatewaySelection;
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::connectivity;
use adhoc_graph::graph::NodeId;
use serde::{Deserialize, Serialize};

/// A k-hop connected dominating set: clusterheads plus gateways.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cds {
    /// Clusterheads, ascending.
    pub heads: Vec<NodeId>,
    /// Gateways, ascending; disjoint from `heads`.
    pub gateways: Vec<NodeId>,
}

impl Cds {
    /// Assembles the CDS from a clustering and a gateway selection.
    pub fn assemble(clustering: &Clustering, selection: &GatewaySelection) -> Self {
        Cds {
            heads: clustering.heads.clone(),
            gateways: selection.gateways.clone(),
        }
    }

    /// Total CDS size (the paper's "Size of CDS" axis).
    pub fn size(&self) -> usize {
        self.heads.len() + self.gateways.len()
    }

    /// All CDS nodes, ascending.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self
            .heads
            .iter()
            .chain(self.gateways.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all
    }

    /// Verifies the CDS against the network:
    ///
    /// 1. heads and gateways are disjoint, in range, duplicate-free;
    /// 2. the CDS induces a connected subgraph of `g` (Theorem 2);
    /// 3. the heads alone k-hop dominate `g` (clustering property, so
    ///    the full CDS does too).
    pub fn verify<G: Adjacency>(&self, g: &G, k: u32) -> Result<(), CdsViolation> {
        let n = g.node_count();
        let mut seen = vec![false; n];
        for &v in self.heads.iter().chain(self.gateways.iter()) {
            if v.index() >= n {
                return Err(CdsViolation::OutOfRange(v));
            }
            if seen[v.index()] {
                return Err(CdsViolation::Duplicate(v));
            }
            seen[v.index()] = true;
        }
        let nodes = self.nodes();
        if !connectivity::is_subset_connected(g, &nodes) {
            return Err(CdsViolation::Disconnected);
        }
        let dist = connectivity::distance_to_set(g, &self.heads);
        for (i, &d) in dist.iter().enumerate() {
            if d > k {
                return Err(CdsViolation::NotDominated {
                    node: NodeId(i as u32),
                    dist: d,
                });
            }
        }
        Ok(())
    }
}

/// Ways a CDS can fail verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CdsViolation {
    /// A CDS node ID is outside the graph.
    OutOfRange(NodeId),
    /// A node appears twice (within or across heads/gateways).
    Duplicate(NodeId),
    /// The induced subgraph is not connected (Theorem 2 violated).
    Disconnected,
    /// Some node is farther than `k` hops from every head.
    NotDominated {
        /// The undominated node.
        node: NodeId,
        /// Its distance to the nearest head.
        dist: u32,
    },
}

impl std::fmt::Display for CdsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdsViolation::OutOfRange(v) => write!(f, "CDS node {v:?} out of range"),
            CdsViolation::Duplicate(v) => write!(f, "CDS node {v:?} duplicated"),
            CdsViolation::Disconnected => write!(f, "CDS induces a disconnected subgraph"),
            CdsViolation::NotDominated { node, dist } => {
                write!(f, "{node:?} is {dist} hops from the nearest head")
            }
        }
    }
}

impl std::error::Error for CdsViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::NeighborRule;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::gateway;
    use crate::priority::LowestId;
    use crate::virtual_graph::VirtualGraph;
    use adhoc_graph::gen;

    #[test]
    fn assemble_and_size() {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let sel = gateway::mesh(&vg, &c);
        let cds = Cds::assemble(&c, &sel);
        assert_eq!(cds.size(), 9); // all nodes on a path
        cds.verify(&g, 1).unwrap();
    }

    #[test]
    fn detects_disconnected() {
        let g = gen::path(5);
        let cds = Cds {
            heads: vec![NodeId(0), NodeId(4)],
            gateways: vec![],
        };
        // Heads dominate only within k=2... 0 covers 0..2, 4 covers
        // 2..4: dominated, but {0,4} not connected in the induced
        // subgraph.
        assert_eq!(cds.verify(&g, 2), Err(CdsViolation::Disconnected));
    }

    #[test]
    fn detects_undominated() {
        let g = gen::path(7);
        let cds = Cds {
            heads: vec![NodeId(0)],
            gateways: vec![],
        };
        let err = cds.verify(&g, 2).unwrap_err();
        assert!(matches!(err, CdsViolation::NotDominated { .. }));
        assert!(err.to_string().contains("hops"));
    }

    #[test]
    fn detects_duplicates_and_range() {
        let g = gen::path(3);
        let cds = Cds {
            heads: vec![NodeId(0)],
            gateways: vec![NodeId(0)],
        };
        assert_eq!(cds.verify(&g, 1), Err(CdsViolation::Duplicate(NodeId(0))));
        let cds = Cds {
            heads: vec![NodeId(9)],
            gateways: vec![],
        };
        assert_eq!(cds.verify(&g, 1), Err(CdsViolation::OutOfRange(NodeId(9))));
    }

    #[test]
    fn empty_cds_on_single_node_graph() {
        let g = adhoc_graph::graph::Graph::new(1);
        let cds = Cds {
            heads: vec![NodeId(0)],
            gateways: vec![],
        };
        cds.verify(&g, 1).unwrap();
    }
}
