//! LMSTGA — the paper's LMST-based gateway algorithm.

use super::GatewaySelection;
use crate::clustering::Clustering;
use crate::virtual_graph::VirtualGraph;
use adhoc_graph::graph::NodeId;
use adhoc_graph::lmst::{self, TieWeight};

/// LMST-based gateway selection (Algorithm `AC-LMST`, lines 7–11, also
/// applicable to the NC relation for `NC-LMST`).
///
/// Each clusterhead `u` treats its neighbor clusterheads as a virtual
/// 1-hop neighborhood, builds a local minimum spanning tree over the
/// virtual links among them (weights = `(hop count, max id, min id)`,
/// mirroring Li/Hou/Sha so all weights are distinct), and keeps only
/// the links to its on-tree neighbors. A link is realized when *either*
/// endpoint keeps it; all interior nodes of realized links become
/// gateways. Theorem 2 proves the result connects all clusterheads.
pub fn lmstga(vg: &VirtualGraph, clustering: &Clustering) -> GatewaySelection {
    lmstga_with(&mut LmstgaScratch::default(), vg, clustering)
}

/// Reusable buffers for [`lmstga_with`]: the Monte-Carlo engine calls
/// the LMST rule twice per replicate (NC and AC graphs), so the local
/// MST scratch and the kept-pair accumulator persist per worker.
#[derive(Clone, Debug, Default)]
pub struct LmstgaScratch {
    lmst: lmst::LmstScratch<TieWeight<u32>>,
    on_tree: Vec<NodeId>,
    kept: Vec<(NodeId, NodeId)>,
}

/// As [`lmstga`], reusing `scratch` across calls.
pub fn lmstga_with(
    scratch: &mut LmstgaScratch,
    vg: &VirtualGraph,
    clustering: &Clustering,
) -> GatewaySelection {
    scratch.kept.clear();
    for (u, partners) in vg.neighbor_sets.iter() {
        if partners.is_empty() {
            continue;
        }
        lmst::on_tree_neighbors_into(
            &mut scratch.lmst,
            u,
            partners,
            |a, b| vg.weight(a, b),
            &mut scratch.on_tree,
        );
        for &v in &scratch.on_tree {
            scratch.kept.push(if u < v { (u, v) } else { (v, u) });
        }
    }
    // A link realized by both endpoints appears twice; sort+dedup gives
    // the same ascending unique pair sequence the old set-based
    // accumulator produced.
    scratch.kept.sort_unstable();
    scratch.kept.dedup();
    let links = scratch
        .kept
        .iter()
        .map(|&(a, b)| vg.link(a, b).expect("kept link exists in the relation"));
    GatewaySelection::from_links(links, clustering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::NeighborRule;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::gateway::mesh;
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use adhoc_graph::graph::NodeId;

    #[test]
    fn lmst_on_path_keeps_chain() {
        // On a path the virtual graph is itself a chain; LMST keeps
        // everything (no redundancy to prune).
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let sel = lmstga(&vg, &c);
        assert_eq!(sel.links_used.len(), 4);
        assert_eq!(
            sel.gateways,
            vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7)]
        );
    }

    #[test]
    fn lmst_prunes_redundant_triangle_link() {
        // Three mutually-adjacent clusters where one inter-head
        // distance is longer: the LMST drops the longest link.
        // Build: heads will be 0, 1, 2 after clustering a triangle of
        // clusters. Topology (k=1):
        //   0-3, 3-4, 4-1   (0..1 via two gateways: 3 hops)
        //   0-5, 5-2        (0..2: 2 hops)
        //   1-6, 6-2        (1..2: 2 hops)
        //   3-5? no. Make clusters adjacent: members 3,4 in cluster 0/1
        //   sides... ensure adjacency pairs exist:
        //   cluster(0) = {0,3,5}, cluster(1) = {1,4,6}, cluster(2)={2,...}
        // Edges: (0,3),(3,4),(4,1) -> clusters 0,1 adjacent via 3-4.
        //        (0,5),(5,2)      -> clusters 0,2 adjacent via 5-2? 5
        //         is member of 0, 2 is head of 2: w1=5,w2=2 neighbors.
        //        (1,6),(6,2)      -> clusters 1,2 adjacent via 6-2.
        let g = adhoc_graph::graph::Graph::from_edges(
            7,
            &[(0, 3), (3, 4), (4, 1), (0, 5), (5, 2), (1, 6), (6, 2)],
        );
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        assert_eq!(c.heads, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        assert_eq!(vg.link_count(), 3);
        assert_eq!(vg.link(NodeId(0), NodeId(1)).unwrap().hops(), 3);
        assert_eq!(vg.link(NodeId(0), NodeId(2)).unwrap().hops(), 2);
        assert_eq!(vg.link(NodeId(1), NodeId(2)).unwrap().hops(), 2);

        let sel = lmstga(&vg, &c);
        // Every head's local view is the full triangle, whose MST is
        // {0-2, 1-2}; the 3-hop 0-1 link is pruned by both endpoints.
        assert_eq!(
            sel.links_used,
            vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]
        );
        assert_eq!(sel.gateways, vec![NodeId(5), NodeId(6)]);

        // Mesh keeps all three links and pays for it.
        let m = mesh(&vg, &c);
        assert_eq!(m.gateway_count(), 4);
    }

    #[test]
    fn lmst_never_beats_mesh_in_links() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(110, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            for rule in [NeighborRule::Adjacent, NeighborRule::All2kPlus1] {
                let vg = VirtualGraph::build(&net.graph, &c, rule);
                let l = lmstga(&vg, &c);
                let m = mesh(&vg, &c);
                assert!(l.links_used.len() <= m.links_used.len());
                assert!(l.gateway_count() <= m.gateway_count());
                // LMST links are a subset of the relation.
                for link in &l.links_used {
                    assert!(m.links_used.contains(link));
                }
            }
        }
    }

    #[test]
    fn single_cluster_selects_nothing() {
        let g = gen::star(6);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let sel = lmstga(&vg, &c);
        assert!(sel.gateways.is_empty());
        assert!(sel.links_used.is_empty());
    }
}
