//! G-MST — the centralized global minimum spanning tree baseline.

use super::GatewaySelection;
use crate::clustering::Clustering;
use crate::virtual_graph::{self, VirtualGraph};
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::labels::HeadLabels;
use adhoc_graph::lmst::TieWeight;
use adhoc_graph::mst::{self, WeightedEdge};

/// Global-MST gateway selection: build the complete virtual graph over
/// all clusterheads (pairwise hop distances, no locality bound), take
/// its minimum spanning tree, and mark the interiors of the chosen
/// shortest paths as gateways.
///
/// The paper uses this centralized construction as the lower-bound
/// comparator ("G-MST has a constant approximation ratio to the optimal
/// k-hop CDS for a constant k"). It is *not* localized: it needs global
/// topology knowledge.
pub fn gmst<G: Adjacency>(g: &G, clustering: &Clustering) -> GatewaySelection {
    // Only head-to-head distances and inter-head path walks are
    // consumed, so each BFS can stop as soon as the farthest head is
    // labeled instead of sweeping its whole component.
    let mut labels = HeadLabels::default();
    labels.rebuild_reaching_heads(g, &clustering.heads);
    gmst_from_labels(g, clustering, &labels)
}

/// As [`gmst`], but reading precomputed **unbounded** head labels (the
/// evaluation engine shares one label build across all algorithms).
///
/// # Panics
/// Panics if `labels` is hop-bounded or lacks a head of `clustering`.
pub fn gmst_from_labels<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
    labels: &HeadLabels,
) -> GatewaySelection {
    assert_eq!(labels.bound(), u32::MAX, "G-MST needs unbounded labels");
    // All pairwise head distances are already in the labels; the MST
    // over them is unique (TieWeight makes all weights distinct), so
    // canonical paths need to be walked only for the h-1 edges Kruskal
    // keeps, not for all h(h-1)/2 pairs.
    let heads = &clustering.heads;
    let mut edges: Vec<WeightedEdge<TieWeight<u32>>> =
        Vec::with_capacity(heads.len().saturating_sub(1) * heads.len() / 2);
    for (i, &b) in heads.iter().enumerate() {
        let slot = labels.slot(b).expect("every head is labeled");
        for &a in &heads[..i] {
            let d = labels.dist(slot, a);
            if d != adhoc_graph::bfs::UNREACHED {
                edges.push(WeightedEdge::new(a, b, TieWeight::new(d, a, b)));
            }
        }
    }
    // Kruskal over node-ID space: only head IDs appear as endpoints,
    // the remaining singletons are inert.
    let tree = mst::kruskal(g.node_count(), &edges);
    let mut store = virtual_graph::LinkStore::default();
    for e in &tree {
        let (a, b) = if e.a < e.b { (e.a, e.b) } else { (e.b, e.a) };
        let slot = labels.slot(b).expect("every head is labeled");
        let ok = store.push_walk(g, a, b, &labels.row(slot));
        debug_assert!(ok, "tree edges connect");
    }
    store.finish();
    GatewaySelection::from_links(store.iter(), clustering)
}

/// G-MST read off the **NC virtual graph**, with no unbounded
/// traversal at all — the single-sweep engine's route.
///
/// Why this is exact and not an approximation: on a clustering that
/// covers a connected component of `G`, Theorem 1 makes that
/// component's adjacent cluster graph connected, and A-NCR ⊆ NC, so
/// the NC graph (all head pairs within `2k+1` hops) connects the
/// component's heads too. By the MST cycle property any head pair
/// farther than `2k+1` hops is then the strict maximum of some cycle
/// (close it through NC edges, all strictly cheaper) and can never be
/// an MST edge — the MST *forest* of the complete head-distance graph
/// (one tree per component, which is what [`gmst`] produces on
/// disconnected `G`: cross-component pairs have no path and are
/// omitted) uses only NC pairs, whose distances and canonical paths
/// `nc` already holds. The spanning test is therefore per component:
/// the Kruskal forest over NC links must hold `h − c` edges, where `c`
/// is the number of components of `G` that contain a head (an `O(E α)`
/// union-find sweep). Only if the NC relation fails *that* — a
/// degraded clustering whose coverage churn has broken — does this
/// fall back to the complete construction of [`gmst`], so the result
/// is identical to it in every case.
pub fn gmst_via_nc<G: Adjacency>(
    g: &G,
    nc: &VirtualGraph,
    clustering: &Clustering,
) -> GatewaySelection {
    let edges: Vec<WeightedEdge<TieWeight<u32>>> = nc
        .links()
        .map(|l| WeightedEdge::new(l.a, l.b, l.weight()))
        .collect();
    let tree = mst::kruskal(g.node_count(), &edges);
    // Common case first: one tree spanning every head (connected `G`),
    // decided without touching `g`. The union-find sweep only runs for
    // genuine forests.
    let spans = tree.len() + 1 == clustering.heads.len()
        || tree.len() + head_components(g, clustering) == clustering.heads.len();
    if !spans {
        return gmst(g, clustering);
    }
    let chosen = tree
        .iter()
        .map(|e| nc.link(e.a, e.b).expect("tree edges come from the NC graph"));
    GatewaySelection::from_links(chosen, clustering)
}

/// Number of connected components of `g` containing at least one
/// clusterhead.
fn head_components<G: Adjacency>(g: &G, clustering: &Clustering) -> usize {
    let label = adhoc_graph::connectivity::components(g);
    let mut labels: Vec<u32> = clustering
        .heads
        .iter()
        .map(|h| label[h.index()])
        .collect();
    labels.sort_unstable();
    labels.dedup();
    labels.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use adhoc_graph::graph::NodeId;

    #[test]
    fn gmst_on_path_uses_chain_links() {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let sel = gmst(&g, &c);
        // MST over heads 0,2,4,6,8 with hop metric picks the four
        // 2-hop consecutive links.
        assert_eq!(sel.links_used.len(), 4);
        assert_eq!(
            sel.gateways,
            vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7)]
        );
    }

    #[test]
    fn gmst_spans_all_heads() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let sel = gmst(&net.graph, &c);
            assert_eq!(
                sel.links_used.len(),
                c.head_count().saturating_sub(1),
                "an MST over h heads has h-1 links"
            );
        }
    }

    #[test]
    fn via_nc_matches_complete_construction() {
        use crate::adjacency::NeighborRule;
        use crate::virtual_graph::VirtualGraph;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let nc = VirtualGraph::build(&net.graph, &c, NeighborRule::All2kPlus1);
            let fast = gmst_via_nc(&net.graph, &nc, &c);
            let full = gmst(&net.graph, &c);
            assert_eq!(fast, full, "k={k}");
        }
    }

    #[test]
    fn via_nc_accepts_per_component_forests() {
        use crate::adjacency::NeighborRule;
        use crate::virtual_graph::VirtualGraph;
        // Two far-apart components: the NC Kruskal result is a forest,
        // one tree per head-bearing component, which the per-component
        // spanning test must accept without the complete-links
        // fallback — and the result still equals the complete
        // construction.
        let g = adhoc_graph::graph::Graph::from_edges(8, &[(0, 1), (1, 2), (5, 6), (6, 7)]);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let nc = VirtualGraph::build(&g, &c, NeighborRule::All2kPlus1);
        let fast = gmst_via_nc(&g, &nc, &c);
        let full = gmst(&g, &c);
        assert_eq!(fast, full);
    }

    #[test]
    fn via_nc_falls_back_when_nc_cannot_span_a_component() {
        use crate::adjacency::NeighborRule;
        use crate::virtual_graph::VirtualGraph;
        use crate::clustering::Clustering;
        // A *degraded* clustering (churn can produce these between
        // repairs): two heads in one component but farther apart than
        // 2k+1 hops, so the NC relation is empty and the shortcut must
        // defer to the complete construction.
        let g = gen::path(12);
        let mut head_of = vec![NodeId(0); 12];
        head_of[11] = NodeId(11);
        let c = Clustering {
            k: 1,
            heads: vec![NodeId(0), NodeId(11)],
            head_of,
            dist_to_head: (0..12).map(|i| (i as u32).min(1)).collect(),
            rounds: 0,
        };
        let nc = VirtualGraph::build(&g, &c, NeighborRule::All2kPlus1);
        assert_eq!(nc.link_count(), 0, "heads beyond 2k+1: no NC links");
        let fast = gmst_via_nc(&g, &nc, &c);
        let full = gmst(&g, &c);
        assert_eq!(fast, full);
        // The fallback really connected them: one 11-hop link.
        assert_eq!(fast.links_used, vec![(NodeId(0), NodeId(11))]);
    }

    #[test]
    fn gmst_single_cluster() {
        let g = gen::star(4);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let sel = gmst(&g, &c);
        assert!(sel.gateways.is_empty());
        assert!(sel.links_used.is_empty());
    }
}
