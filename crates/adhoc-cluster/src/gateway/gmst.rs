//! G-MST — the centralized global minimum spanning tree baseline.

use super::GatewaySelection;
use crate::clustering::Clustering;
use crate::virtual_graph::{self, VirtualLink};
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::lmst::TieWeight;
use adhoc_graph::mst::{self, WeightedEdge};
use std::collections::BTreeMap;

/// Global-MST gateway selection: build the complete virtual graph over
/// all clusterheads (pairwise hop distances, no locality bound), take
/// its minimum spanning tree, and mark the interiors of the chosen
/// shortest paths as gateways.
///
/// The paper uses this centralized construction as the lower-bound
/// comparator ("G-MST has a constant approximation ratio to the optimal
/// k-hop CDS for a constant k"). It is *not* localized: it needs global
/// topology knowledge.
pub fn gmst<G: Adjacency>(g: &G, clustering: &Clustering) -> GatewaySelection {
    let links = virtual_graph::complete_virtual_links(g, clustering);
    let by_pair: BTreeMap<(adhoc_graph::NodeId, adhoc_graph::NodeId), &VirtualLink> =
        links.iter().map(|l| ((l.a, l.b), l)).collect();
    let edges: Vec<WeightedEdge<TieWeight<u32>>> = links
        .iter()
        .map(|l| WeightedEdge::new(l.a, l.b, l.weight()))
        .collect();
    // Kruskal over node-ID space: only head IDs appear as endpoints,
    // the remaining singletons are inert.
    let tree = mst::kruskal(g.node_count(), &edges);
    let chosen = tree.iter().map(|e| {
        let key = if e.a < e.b { (e.a, e.b) } else { (e.b, e.a) };
        by_pair[&key]
    });
    GatewaySelection::from_links(chosen, clustering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use adhoc_graph::graph::NodeId;

    #[test]
    fn gmst_on_path_uses_chain_links() {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let sel = gmst(&g, &c);
        // MST over heads 0,2,4,6,8 with hop metric picks the four
        // 2-hop consecutive links.
        assert_eq!(sel.links_used.len(), 4);
        assert_eq!(
            sel.gateways,
            vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7)]
        );
    }

    #[test]
    fn gmst_spans_all_heads() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let sel = gmst(&net.graph, &c);
            assert_eq!(
                sel.links_used.len(),
                c.head_count().saturating_sub(1),
                "an MST over h heads has h-1 links"
            );
        }
    }

    #[test]
    fn gmst_single_cluster() {
        let g = gen::star(4);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let sel = gmst(&g, &c);
        assert!(sel.gateways.is_empty());
        assert!(sel.links_used.is_empty());
    }
}
