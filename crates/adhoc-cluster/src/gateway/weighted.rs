//! Energy-aware LMSTGA — a §3.3-motivated extension.
//!
//! The paper's discussion section argues for power-aware designs
//! (rotating clusterheads by residual energy). Gateways relay traffic
//! too, so this variant extends LMSTGA to *weighted* virtual links:
//! the cost of a path is `hops + Σ relay_cost(interior node)`, so
//! virtual links route around energy-poor relays and the local MST
//! prefers cheap links. With all relay costs zero this degenerates to
//! exactly the hop-based [`super::lmstga`] (tested).
//!
//! Trade-off (documented, not hidden): weighted shortest paths may be
//! longer than `2k+1` hops, so the strict locality bound of the
//! original algorithm is relaxed — information collection follows the
//! chosen paths instead of the fixed-radius ball.

use super::GatewaySelection;
use crate::adjacency::{self, NeighborRule};
use crate::clustering::Clustering;
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::dijkstra::{self, UNREACHED_COST};
use adhoc_graph::graph::NodeId;
use adhoc_graph::lmst::{self, TieWeight};
use adhoc_graph::paths;
use std::collections::BTreeMap;

/// A weighted virtual link.
#[derive(Clone, Debug)]
struct WLink {
    path: Vec<NodeId>,
    cost: u64,
}

/// LMSTGA over energy-weighted virtual links.
///
/// `relay_cost[v]` is the penalty for routing through `v` (0 = free,
/// larger = avoid). Edge weights are `1 + relay_cost(target)`, so with
/// all-zero costs the weights are hop counts and the canonical paths
/// coincide with the unweighted pipeline's.
///
/// # Panics
/// Panics if `relay_cost.len()` differs from the node count.
pub fn lmstga_weighted<G: Adjacency>(
    g: &G,
    clustering: &Clustering,
    rule: NeighborRule,
    relay_cost: &[u64],
) -> GatewaySelection {
    assert_eq!(relay_cost.len(), g.node_count(), "one cost per node");
    let sets = adjacency::neighbor_clusterheads(g, clustering, rule);
    let weight = |_: NodeId, to: NodeId| 1 + relay_cost[to.index()];

    // Weighted canonical paths per selected pair: Dijkstra labels from
    // the larger endpoint, then a greedy smallest-ID walk from the
    // smaller endpoint (mirrors the unweighted lexicographic rule).
    let mut links: BTreeMap<(NodeId, NodeId), WLink> = BTreeMap::new();
    for (b, partners) in sets.iter() {
        let smaller: Vec<NodeId> = partners.iter().copied().filter(|&a| a < b).collect();
        if smaller.is_empty() {
            continue;
        }
        let (cost, _) = dijkstra::dijkstra(g, b, weight);
        for a in smaller {
            assert_ne!(cost[a.index()], UNREACHED_COST, "relation pairs connect");
            let path = greedy_walk(g, a, b, &cost, &weight);
            links.insert(
                (a, b),
                WLink {
                    cost: cost[a.index()],
                    path,
                },
            );
        }
    }

    // Per-head local MST over the weighted links; realized links from
    // either endpoint, exactly like the unweighted LMSTGA.
    let mut kept: std::collections::BTreeSet<(NodeId, NodeId)> = Default::default();
    let link_weight = |a: NodeId, b: NodeId| -> Option<TieWeight<u64>> {
        let key = if a < b { (a, b) } else { (b, a) };
        links.get(&key).map(|l| TieWeight::new(l.cost, a, b))
    };
    for (u, partners) in sets.iter() {
        if partners.is_empty() {
            continue;
        }
        for v in lmst::on_tree_neighbors(u, partners, link_weight) {
            kept.insert(if u < v { (u, v) } else { (v, u) });
        }
    }

    let mut gateways = Vec::new();
    let mut links_used = Vec::new();
    for (a, b) in kept {
        let l = &links[&(a, b)];
        links_used.push((a, b));
        for &w in paths::interior(&l.path) {
            if !clustering.is_head(w) {
                gateways.push(w);
            }
        }
    }
    gateways.sort_unstable();
    gateways.dedup();
    GatewaySelection {
        gateways,
        links_used,
    }
}

/// Walks from `from` toward the label source along strictly decreasing
/// costs, taking the smallest-ID qualifying neighbor at each step.
fn greedy_walk<G: Adjacency, W: Fn(NodeId, NodeId) -> u64>(
    g: &G,
    from: NodeId,
    to: NodeId,
    cost_from_to: &[u64],
    weight: &W,
) -> Vec<NodeId> {
    let mut path = vec![from];
    let mut cur = from;
    while cur != to {
        let c = cost_from_to[cur.index()];
        let next = g
            .adj(cur)
            .iter()
            .copied()
            .find(|&y| {
                cost_from_to[y.index()] != UNREACHED_COST
                    && cost_from_to[y.index()] + weight(y, cur) == c
            })
            .expect("cost labels decrease along some neighbor");
        path.push(next);
        cur = next;
    }
    path
}

/// Total relay cost of a selection under `relay_cost` (for
/// experiments: lower = the selection burdens cheaper nodes).
pub fn selection_relay_cost(selection: &GatewaySelection, relay_cost: &[u64]) -> u64 {
    selection
        .gateways
        .iter()
        .map(|g| relay_cost[g.index()])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cds::Cds;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::gateway;
    use crate::priority::LowestId;
    use crate::virtual_graph::VirtualGraph;
    use adhoc_graph::gen;
    use adhoc_graph::graph::Graph;

    #[test]
    fn zero_costs_match_hop_based_lmstga() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let zeros = vec![0u64; net.graph.len()];
            let weighted = lmstga_weighted(&net.graph, &c, NeighborRule::Adjacent, &zeros);
            let vg = VirtualGraph::build(&net.graph, &c, NeighborRule::Adjacent);
            let hop = gateway::lmstga(&vg, &c);
            assert_eq!(weighted.links_used, hop.links_used, "k={k}");
            assert_eq!(weighted.gateways, hop.gateways, "k={k}");
        }
    }

    #[test]
    fn expensive_relay_is_routed_around() {
        // Two parallel 2-hop bridges between heads 0 and 1: interior
        // nodes 2 (cheap) and 3 (expensive). The unweighted canonical
        // path takes 2 (smaller ID); with node 2 made expensive the
        // weighted variant must switch to 3.
        let g = Graph::from_edges(4, &[(0, 2), (2, 1), (0, 3), (3, 1)]);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let mut costs = vec![0u64; 4];
        costs[2] = 100;
        let sel = lmstga_weighted(&g, &c, NeighborRule::Adjacent, &costs);
        assert_eq!(sel.gateways, vec![NodeId(3)]);
        assert_eq!(selection_relay_cost(&sel, &costs), 0);
        // And the flipped case.
        let mut costs2 = vec![0u64; 4];
        costs2[3] = 100;
        let sel2 = lmstga_weighted(&g, &c, NeighborRule::Adjacent, &costs2);
        assert_eq!(sel2.gateways, vec![NodeId(2)]);
    }

    #[test]
    fn weighted_cds_stays_connected() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(44);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 8.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let costs: Vec<u64> = (0..net.graph.len()).map(|_| rng.gen_range(0..20)).collect();
            for rule in [NeighborRule::Adjacent, NeighborRule::All2kPlus1] {
                let sel = lmstga_weighted(&net.graph, &c, rule, &costs);
                let cds = Cds::assemble(&c, &sel);
                cds.verify(&net.graph, k)
                    .unwrap_or_else(|e| panic!("k={k} {rule:?}: {e}"));
            }
        }
    }

    #[test]
    fn weighted_selection_is_not_more_expensive() {
        // On average the weighted variant must reduce total relay
        // cost vs the hop-based one under heterogeneous costs.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(55);
        let (mut wsum, mut hsum) = (0u64, 0u64);
        for _ in 0..8 {
            let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
            let c = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
            let costs: Vec<u64> = (0..net.graph.len()).map(|_| rng.gen_range(0..50)).collect();
            let weighted = lmstga_weighted(&net.graph, &c, NeighborRule::Adjacent, &costs);
            let vg = VirtualGraph::build(&net.graph, &c, NeighborRule::Adjacent);
            let hop = gateway::lmstga(&vg, &c);
            wsum += selection_relay_cost(&weighted, &costs);
            hsum += selection_relay_cost(&hop, &costs);
        }
        assert!(
            wsum <= hsum,
            "weighted total relay cost {wsum} exceeds hop-based {hsum}"
        );
    }

    #[test]
    #[should_panic(expected = "one cost per node")]
    fn wrong_cost_len_panics() {
        let g = gen::path(4);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        lmstga_weighted(&g, &c, NeighborRule::Adjacent, &[0, 0]);
    }
}
