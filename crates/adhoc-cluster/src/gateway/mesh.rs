//! Mesh-based gateway selection.

use super::GatewaySelection;
use crate::clustering::Clustering;
use crate::virtual_graph::VirtualGraph;

/// Mesh-based gateway selection: realize **every** virtual link of the
/// relation, so each clusterhead has exactly one gateway path to each
/// of its selected neighbor clusterheads.
///
/// With the NC rule this is the paper's `NC-Mesh` baseline; with A-NCR
/// it is `AC-Mesh`. Connectivity follows from Theorem 1 (for AC) or
/// from NC being a supergraph of AC.
pub fn mesh(vg: &VirtualGraph, clustering: &Clustering) -> GatewaySelection {
    GatewaySelection::from_links(vg.links(), clustering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::NeighborRule;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use adhoc_graph::gen;
    use adhoc_graph::graph::NodeId;

    #[test]
    fn mesh_realizes_every_link() {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let sel = mesh(&vg, &c);
        assert_eq!(sel.links_used.len(), vg.link_count());
        assert_eq!(
            sel.gateways,
            vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7)]
        );
    }

    #[test]
    fn nc_mesh_marks_at_least_as_many_as_ac_mesh() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        for k in 1..=3u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let nc = VirtualGraph::build(&net.graph, &c, NeighborRule::All2kPlus1);
            let ac = VirtualGraph::build(&net.graph, &c, NeighborRule::Adjacent);
            let snc = mesh(&nc, &c);
            let sac = mesh(&ac, &c);
            assert!(snc.gateway_count() >= sac.gateway_count());
            // AC links are a subset of NC links.
            for l in &sac.links_used {
                assert!(snc.links_used.contains(l));
            }
        }
    }
}
