//! Gateway selection algorithms (§3.2).
//!
//! All three algorithms consume virtual links and mark the interior
//! nodes of the links they keep as gateways:
//!
//! * [`mesh`] — keeps *every* virtual link of the relation, i.e. each
//!   clusterhead connects directly to each of its selected neighbor
//!   clusterheads (the mesh-based scheme of Sinha et al., generalized
//!   to k hops).
//! * [`lmstga`] — the paper's LMST-based gateway algorithm: each
//!   clusterhead runs the local-MST rule over its neighbor clusterheads
//!   using virtual distances and keeps only links to its on-tree
//!   neighbors (Theorem 2 proves the union stays connected).
//! * [`gmst`] — the centralized global-MST lower bound: a minimum
//!   spanning tree over all clusterheads with pairwise hop distances.

mod gmst;
mod lmstga;
mod mesh;
mod weighted;

pub use gmst::{gmst, gmst_from_labels, gmst_via_nc};
pub use lmstga::{lmstga, lmstga_with, LmstgaScratch};
pub use mesh::mesh;
pub use weighted::{lmstga_weighted, selection_relay_cost};

use crate::clustering::Clustering;
use crate::virtual_graph::LinkRef;
use adhoc_graph::graph::NodeId;

/// The outcome of a gateway selection algorithm.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GatewaySelection {
    /// Marked gateway nodes: sorted, de-duplicated, never clusterheads.
    pub gateways: Vec<NodeId>,
    /// The virtual links that were realized, as `(a, b)` with `a < b`.
    pub links_used: Vec<(NodeId, NodeId)>,
}

impl GatewaySelection {
    /// Builds a selection by marking the interiors of `links`.
    ///
    /// Interior nodes that happen to be clusterheads (possible only for
    /// unbounded G-MST links) are not re-marked: they already belong to
    /// the CDS.
    pub(crate) fn from_links<'a>(
        links: impl IntoIterator<Item = LinkRef<'a>>,
        clustering: &Clustering,
    ) -> Self {
        let mut gateways = Vec::new();
        let mut links_used = Vec::new();
        for l in links {
            links_used.push((l.a, l.b));
            for &w in l.interior() {
                if !clustering.is_head(w) {
                    gateways.push(w);
                }
            }
        }
        gateways.sort_unstable();
        gateways.dedup();
        links_used.sort_unstable();
        links_used.dedup();
        GatewaySelection {
            gateways,
            links_used,
        }
    }

    /// Number of gateway nodes.
    pub fn gateway_count(&self) -> usize {
        self.gateways.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::NeighborRule;
    use crate::clustering::{cluster, MemberPolicy};
    use crate::priority::LowestId;
    use crate::virtual_graph::VirtualGraph;
    use adhoc_graph::gen;

    #[test]
    fn from_links_dedups_shared_gateways() {
        let g = gen::path(9);
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let all: Vec<_> = vg.links().collect();
        // Feed every link twice; gateways and links must still be
        // unique.
        let doubled = all.iter().chain(all.iter()).copied();
        let sel = GatewaySelection::from_links(doubled, &c);
        assert_eq!(sel.links_used.len(), vg.link_count());
        assert_eq!(
            sel.gateways,
            vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7)]
        );
        assert_eq!(sel.gateway_count(), 4);
    }
}
