//! The single-sweep evaluation engine must be a pure optimization:
//! `pipeline::run_all` has to reproduce the per-algorithm
//! `pipeline::run_on` outputs **bit-for-bit** — same realized links,
//! same gateways, same CDS membership, same canonical paths — for all
//! five algorithms over random geometric graphs (the paper's §4
//! workload) across k ∈ 1..=4.

use adhoc_cluster::adjacency::NeighborRule;
use adhoc_cluster::clustering::{self, MemberPolicy};
use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::virtual_graph::VirtualGraph;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Flattens a virtual graph into comparable `(a, b, path)` rows.
fn link_rows(vg: &VirtualGraph) -> Vec<(NodeId, NodeId, Vec<NodeId>)> {
    vg.links().map(|l| (l.a, l.b, l.path.to_vec())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn run_all_matches_run_on(
        seed in 0u64..1_000_000,
        n in 40usize..=100,
        k in 1u32..=4,
        dense in 0u32..2,
    ) {
        let d = if dense == 1 { 10.0 } else { 6.0 };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, d), &mut rng);
        let c = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);

        let eval = pipeline::run_all(&net.graph, &c);
        prop_assert_eq!(&eval.clustering.head_of, &c.head_of);

        for alg in Algorithm::ALL {
            let reference = pipeline::run_on(&net.graph, alg, &c);
            let engine = eval.of(alg);
            prop_assert_eq!(
                &engine.selection, &reference.selection,
                "{} selection diverged", alg
            );
            prop_assert_eq!(&engine.cds, &reference.cds, "{} CDS diverged", alg);

            // The shared virtual graphs must match the per-algorithm
            // builds down to the canonical path bytes.
            if let Some(ref_vg) = &reference.virtual_graph {
                let shared = match alg.neighbor_rule().expect("localized") {
                    NeighborRule::All2kPlus1 => &eval.nc_graph,
                    NeighborRule::Adjacent => &eval.ac_graph,
                };
                prop_assert_eq!(
                    link_rows(shared),
                    link_rows(ref_vg),
                    "{} virtual graph diverged", alg
                );
            }
        }
    }

    #[test]
    fn warm_scratch_matches_cold_scratch(
        seed in 0u64..1_000_000,
        k in 1u32..=3,
    ) {
        // Reusing one scratch across replicates of different sizes must
        // never leak state between builds.
        let mut scratch = EvalScratch::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for n in [70usize, 40, 90] {
            let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
            let c = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let warm = pipeline::run_all_with(&net.graph, &c, &mut scratch);
            let cold = pipeline::run_all(&net.graph, &c);
            for alg in Algorithm::ALL {
                prop_assert_eq!(&warm.of(alg).selection, &cold.of(alg).selection);
                prop_assert_eq!(&warm.of(alg).cds, &cold.of(alg).cds);
            }
        }
    }
}
