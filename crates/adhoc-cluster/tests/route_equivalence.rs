//! The compiled route plan must be a pure compilation of the legacy
//! per-query-BFS router: on the **same backbone** the two produce
//! identical walks — node for node — for every pair, every algorithm's
//! selected link set, and every k ∈ 1..=4. And the plan's incremental
//! repair must be a pure optimization of recompiling: after any delta
//! chain, `apply_delta` leaves the plan **equal** (derived `Eq`) to one
//! compiled from scratch on the new state.

use adhoc_cluster::clustering::{self, Clustering, MemberPolicy};
use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::routing::{
    walk_hops, ClusterRouter, LegacyScratch, Mix, QueryEngine, RoutePlan, Workload,
};
use adhoc_cluster::virtual_graph::VirtualGraph;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Compiled plan ≡ legacy walker on every algorithm's backbone.
    #[test]
    fn compiled_plan_matches_legacy_router(
        seed in 0u64..1_000_000,
        n in 40usize..=90,
        k in 1u32..=4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 7.0), &mut rng);
        let c = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let eval = pipeline::run_all_with(&net.graph, &c, &mut scratch);
        let mut legacy_scratch = LegacyScratch::new();
        let mut walk = Vec::new();
        for alg in Algorithm::ALL {
            let links = eval.selected_links(alg);
            let plan = RoutePlan::compile(&net.graph, &c, scratch.labels(), links.iter().copied());
            let backbone = VirtualGraph::from_links(&c.heads, links);
            let legacy = ClusterRouter::with_graph(&c, backbone);
            for _ in 0..12 {
                let u = NodeId(rng.gen_range(0..n as u32));
                let v = NodeId(rng.gen_range(0..n as u32));
                let compiled = plan.route_into(u, v, &mut walk);
                let reference = legacy.route_with(&net.graph, u, v, &mut legacy_scratch);
                match (compiled, reference) {
                    (Some(hops), Some(ref_walk)) => {
                        prop_assert_eq!(
                            &walk, &ref_walk,
                            "{} k={} {:?}->{:?}: walks diverged", alg, k, u, v
                        );
                        prop_assert_eq!(hops, walk_hops(&ref_walk));
                        prop_assert_eq!(walk[0], u);
                        prop_assert_eq!(*walk.last().unwrap(), v);
                        prop_assert!(adhoc_cluster::routing::is_valid_walk(&net.graph, &walk));
                    }
                    (None, None) => {}
                    (a, b) => prop_assert!(
                        false,
                        "{} {:?}->{:?}: compiled {:?} vs legacy {:?}",
                        alg, u, v, a.is_some(), b.is_some()
                    ),
                }
            }
        }
    }

    /// `apply_delta` ≡ recompile-from-scratch through random delta
    /// chains driven by the pipeline's own incremental update.
    #[test]
    fn plan_delta_repair_matches_recompile(
        seed in 0u64..1_000_000,
        k in 1u32..=3,
    ) {
        let n = 80usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
        let mut g = net.graph.clone();
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let mut eval = pipeline::run_all_with(&g, &c, &mut scratch);
        let mut plan = RoutePlan::compile(
            &g, &c, scratch.labels(), eval.selected_links(Algorithm::AcLmst),
        );
        let mut extras: Vec<(NodeId, NodeId)> = Vec::new();
        for step in 0..8 {
            let mut delta = adhoc_graph::delta::TopologyDelta::new();
            if step % 3 == 2 && !extras.is_empty() {
                for _ in 0..rng.gen_range(1..=extras.len()) {
                    let (a, b) = extras.swap_remove(rng.gen_range(0..extras.len()));
                    g.remove_edge(a, b);
                    delta.push_removed(a, b);
                }
            } else {
                for _ in 0..rng.gen_range(1..4) {
                    let a = NodeId(rng.gen_range(0..n as u32));
                    let b = NodeId(rng.gen_range(0..n as u32));
                    if a != b && !g.has_edge(a, b) {
                        g.add_edge(a, b);
                        delta.push_added(a, b);
                        extras.push(if a < b { (a, b) } else { (b, a) });
                    }
                }
            }
            delta.normalize();
            // Advance labels + evaluation the way the churn engine does,
            // then repair the plan off the dirty slots.
            let advance = pipeline::advance_labels(&g, &c, &delta, &mut scratch);
            let (next, _) = pipeline::update_all_after(&g, &c, &advance, &eval, &mut scratch);
            eval = next;
            let dirty: Vec<usize> = match &advance {
                pipeline::LabelAdvance::Incremental { dirty } => dirty.clone(),
                pipeline::LabelAdvance::Rebuilt => (0..c.heads.len()).collect(),
            };
            let report = plan.apply_delta(
                &g, &c, scratch.labels(), &delta, &dirty,
                eval.selected_links(Algorithm::AcLmst),
            );
            prop_assert!(!report.rebuilt, "head set never changes in this chain");
            let fresh = RoutePlan::compile(
                &g, &c, scratch.labels(), eval.selected_links(Algorithm::AcLmst),
            );
            prop_assert_eq!(&plan, &fresh, "step {}: repaired plan diverged", step);
        }
    }

    /// The batched engine answers every mix identically for any worker
    /// count, and every served walk matches a direct plan query.
    #[test]
    fn route_many_is_worker_count_invariant(
        seed in 0u64..1_000_000,
        mix_id in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(70, 100.0, 7.0), &mut rng);
        let c = clustering::cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let eval = pipeline::run_all_with(&net.graph, &c, &mut scratch);
        let plan = RoutePlan::compile(
            &net.graph, &c, scratch.labels(), eval.selected_links(Algorithm::AcMesh),
        );
        let mix = ["uniform", "hotspot", "local"][mix_id].parse::<Mix>().unwrap();
        let workload = Workload::new(&plan);
        let pairs = workload.generate(&plan, mix, 120, &mut rng);
        let one = QueryEngine::new(&plan).route_many(&pairs);
        let four = QueryEngine::with_workers(&plan, 4).route_many(&pairs);
        prop_assert_eq!(&one, &four);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let direct = plan.route(u, v).expect("connected");
            prop_assert_eq!(one.hops[i], walk_hops(&direct));
        }
    }
}

/// A departed (isolated, sentinel-affiliated) node must be unroutable,
/// surviving pairs unaffected — the churn engine's depart path relies
/// on this.
#[test]
fn departed_nodes_are_unroutable() {
    let mut g = gen::path(9);
    let mut c: Clustering = clustering::cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
    // Depart node 1 the way the churn engine does: isolate its radio
    // and point its affiliation at the sentinel.
    g.remove_edge(NodeId(0), NodeId(1));
    g.remove_edge(NodeId(1), NodeId(2));
    c.head_of[1] = NodeId(u32::MAX);
    c.dist_to_head[1] = 0;
    let mut scratch = EvalScratch::new();
    let eval = pipeline::run_all_with(&g, &c, &mut scratch);
    let plan = RoutePlan::compile(&g, &c, scratch.labels(), eval.ac_graph.links());
    assert!(plan.route(NodeId(1), NodeId(5)).is_none());
    assert!(plan.route(NodeId(5), NodeId(1)).is_none());
    assert!(plan.affiliation(NodeId(1)).is_none());
    // Survivors on the connected side still route; head 0 is cut off.
    assert!(plan.route(NodeId(2), NodeId(8)).is_some());
    assert!(plan.route(NodeId(0), NodeId(2)).is_none());
}
