//! Property-based tests for the clustering pipeline.

use adhoc_cluster::adjacency::{self, NeighborRule};
use adhoc_cluster::clustering::{self, MemberPolicy};
use adhoc_cluster::pipeline::{self, Algorithm, PipelineConfig};
use adhoc_cluster::priority::{HighestDegree, KhopDegree, LowestId, LowestSpeed, RandomTimer};
use adhoc_cluster::virtual_graph::VirtualGraph;
use adhoc_graph::graph::{Graph, NodeId};
use proptest::prelude::*;

/// Random connected graph: random tree plus extra edges.
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n)
        .prop_flat_map(|n| {
            let parents: Vec<_> = (1..n).map(|i| 0..i as u32).collect();
            let extra = (0..n as u32, 0..n as u32);
            (Just(n), parents, proptest::collection::vec(extra, 0..n))
        })
        .prop_map(|(n, parents, extra)| {
            let mut g = Graph::new(n);
            for (i, p) in parents.into_iter().enumerate() {
                g.add_edge(NodeId((i + 1) as u32), NodeId(p));
            }
            for (a, b) in extra {
                if a != b && !g.has_edge(NodeId(a), NodeId(b)) {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clustering_invariants(g in arb_connected_graph(40), k in 1u32..4) {
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        prop_assert!(c.verify(&g).is_ok());
        // Partition: sizes sum to n.
        prop_assert_eq!(c.cluster_sizes().iter().sum::<usize>(), g.len());
    }

    #[test]
    fn heads_do_not_depend_on_member_policy(g in arb_connected_graph(30), k in 1u32..4) {
        // Which nodes get covered each round depends only on the new
        // heads' k-balls, not on which cluster a member picks, so the
        // elected heads are identical across policies.
        let a = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let b = clustering::cluster(&g, k, &LowestId, MemberPolicy::DistanceBased);
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::SizeBased);
        prop_assert_eq!(&a.heads, &b.heads);
        prop_assert_eq!(&a.heads, &c.heads);
    }

    #[test]
    fn all_priorities_produce_valid_clusterings(g in arb_connected_graph(25), k in 1u32..3) {
        use rand::{rngs::StdRng, SeedableRng};
        let c1 = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        prop_assert!(c1.verify(&g).is_ok());
        let hd = HighestDegree::from_graph(&g);
        let c2 = clustering::cluster(&g, k, &hd, MemberPolicy::IdBased);
        prop_assert!(c2.verify(&g).is_ok());
        let rt = RandomTimer::sample(g.len(), &mut StdRng::seed_from_u64(1));
        let c3 = clustering::cluster(&g, k, &rt, MemberPolicy::IdBased);
        prop_assert!(c3.verify(&g).is_ok());
        let kd = KhopDegree::from_graph(&g, k);
        let c4 = clustering::cluster(&g, k, &kd, MemberPolicy::IdBased);
        prop_assert!(c4.verify(&g).is_ok());
        let speeds: Vec<f64> = (0..g.len()).map(|i| (i % 7) as f64).collect();
        let c5 = clustering::cluster(&g, k, &LowestSpeed::new(&speeds), MemberPolicy::IdBased);
        prop_assert!(c5.verify(&g).is_ok());
    }

    #[test]
    fn every_algorithm_yields_valid_cds(g in arb_connected_graph(35), k in 1u32..4) {
        let cfg = PipelineConfig::new(k);
        let clustering = clustering::cluster(&g, k, &LowestId, cfg.policy);
        for alg in Algorithm::ALL {
            let out = pipeline::run_on(&g, alg, &clustering);
            prop_assert!(
                out.cds.verify(&g, k).is_ok(),
                "{} produced an invalid CDS", alg
            );
            // Gateways are never clusterheads.
            for v in &out.cds.gateways {
                prop_assert!(!out.clustering.is_head(*v));
            }
        }
    }

    #[test]
    fn ac_relation_is_subset_of_nc(g in arb_connected_graph(30), k in 1u32..4) {
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let ac = adjacency::neighbor_clusterheads(&g, &c, NeighborRule::Adjacent);
        let nc = adjacency::neighbor_clusterheads(&g, &c, NeighborRule::All2kPlus1);
        prop_assert!(ac.check_symmetric().is_ok());
        prop_assert!(nc.check_symmetric().is_ok());
        for (h, adj) in ac.iter() {
            for v in adj {
                prop_assert!(nc.of(h).contains(v));
            }
        }
    }

    #[test]
    fn lmst_dominated_by_mesh(g in arb_connected_graph(30), k in 1u32..4) {
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        for rule in [NeighborRule::Adjacent, NeighborRule::All2kPlus1] {
            let vg = VirtualGraph::build(&g, &c, rule);
            let mesh = adhoc_cluster::gateway::mesh(&vg, &c);
            let lmst = adhoc_cluster::gateway::lmstga(&vg, &c);
            prop_assert!(lmst.gateway_count() <= mesh.gateway_count());
            prop_assert!(lmst.links_used.len() <= mesh.links_used.len());
        }
    }

    #[test]
    fn gmst_link_count_is_exactly_spanning(g in arb_connected_graph(30), k in 1u32..4) {
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let sel = adhoc_cluster::gateway::gmst(&g, &c);
        prop_assert_eq!(sel.links_used.len(), c.head_count() - 1);
    }

    #[test]
    fn virtual_links_are_shortest_paths(g in arb_connected_graph(25), k in 1u32..3) {
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        for l in vg.links() {
            let d = adhoc_graph::bfs::distances(&g, l.a);
            prop_assert_eq!(l.hops(), d[l.b.index()]);
            prop_assert!(adhoc_graph::paths::is_valid_path(&g, l.path));
        }
    }

    #[test]
    fn dist_to_head_bounded_by_k(g in arb_connected_graph(35), k in 1u32..5) {
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::DistanceBased);
        for v in 0..g.len() {
            prop_assert!(c.dist_to_head[v] <= k);
        }
    }

    #[test]
    fn core_algorithm_contract(g in arb_connected_graph(30), k in 1u32..4) {
        use adhoc_cluster::core_algorithm::{core_cluster, verify_core};
        let core = core_cluster(&g, k, &LowestId);
        prop_assert!(verify_core(&g, &core).is_ok());
        // Core heads dominate in one round; note that NO inequality
        // holds universally between core and cluster head counts (the
        // iterative algorithm can fragment leftover nodes into extra
        // clusters on stars, while core merges them), so only the
        // contract is asserted here; the typical-case comparison lives
        // in the baselines experiment.
        prop_assert_eq!(core.rounds, 1);
        // The gateway pipeline still yields a valid CDS on top of it.
        let out = pipeline::run_on(&g, Algorithm::AcLmst, &core);
        prop_assert!(out.cds.verify(&g, k).is_ok());
    }

    #[test]
    fn hierarchy_levels_shrink_and_stay_connected(g in arb_connected_graph(35)) {
        use adhoc_cluster::hierarchy::Hierarchy;
        use adhoc_graph::connectivity;
        let h = Hierarchy::build(&g, &[1, 1, 1], MemberPolicy::IdBased);
        let counts = h.head_counts();
        for w in counts.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
        for level in &h.levels {
            prop_assert!(connectivity::is_connected(&level.graph));
            prop_assert!(level.clustering.verify(&level.graph).is_ok());
        }
        // Top heads resolve to physical level-0 heads.
        for &t in &h.top_heads() {
            prop_assert!(h.levels[0].clustering.is_head(t));
        }
    }

    #[test]
    fn border_gateways_valid_at_k1(g in arb_connected_graph(30)) {
        use adhoc_cluster::border::border_gateways;
        use adhoc_cluster::cds::Cds;
        let c = clustering::cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let sel = border_gateways(&g, &c);
        let cds = Cds::assemble(&c, &sel);
        prop_assert!(cds.verify(&g, 1).is_ok());
        // Border marks a superset of what any one path per pair needs:
        // it can never realize fewer adjacent pairs than exist.
        let ac = adjacency::neighbor_clusterheads(&g, &c, NeighborRule::Adjacent);
        prop_assert_eq!(sel.links_used.len(), ac.pair_count());
    }

    #[test]
    fn weighted_lmstga_valid_and_zero_cost_canonical(
        g in arb_connected_graph(25),
        k in 1u32..3,
        salt in 0u64..1000,
    ) {
        use adhoc_cluster::gateway::{lmstga, lmstga_weighted};
        use adhoc_cluster::cds::Cds;
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        // Pseudo-random relay costs from the salt.
        let costs: Vec<u64> = (0..g.len() as u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9).wrapping_add(salt)) % 17)
            .collect();
        let sel = lmstga_weighted(&g, &c, NeighborRule::Adjacent, &costs);
        let cds = Cds::assemble(&c, &sel);
        prop_assert!(cds.verify(&g, k).is_ok());
        // Zero costs reproduce the hop-based algorithm exactly.
        let zeros = vec![0u64; g.len()];
        let z = lmstga_weighted(&g, &c, NeighborRule::Adjacent, &zeros);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let hop = lmstga(&vg, &c);
        prop_assert_eq!(z.gateways, hop.gateways);
        prop_assert_eq!(z.links_used, hop.links_used);
    }
}

// ---- exact-solver properties (small instances, fewer cases) ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_cds_lower_bounds_every_algorithm(g in arb_connected_graph(14), k in 1u32..3) {
        use adhoc_cluster::exact::{self, ExactConfig};
        let opt = exact::min_khop_cds(&g, k, &ExactConfig::default());
        prop_assert!(opt.optimal);
        prop_assert!(exact::verify_khop_cds(&g, &opt.set, k).is_ok());
        for alg in Algorithm::ALL {
            let out = pipeline::run(&g, alg, &PipelineConfig::new(k));
            prop_assert!(
                out.cds.size() >= opt.size(),
                "{alg} beat the proven optimum: {} < {}",
                out.cds.size(),
                opt.size()
            );
        }
    }

    #[test]
    fn exact_ds_lower_bounds_exact_cds(g in arb_connected_graph(14), k in 1u32..3) {
        use adhoc_cluster::exact::{self, ExactConfig};
        let ds = exact::min_khop_ds(&g, k, &ExactConfig::default());
        let cds = exact::min_khop_cds(&g, k, &ExactConfig::default());
        prop_assert!(ds.optimal && cds.optimal);
        prop_assert!(ds.size() <= cds.size());
    }

    #[test]
    fn exact_cds_monotone_in_k(g in arb_connected_graph(12)) {
        use adhoc_cluster::exact::{self, ExactConfig};
        let mut prev = usize::MAX;
        for k in 1..=3u32 {
            let r = exact::min_khop_cds(&g, k, &ExactConfig::default());
            prop_assert!(r.optimal);
            prop_assert!(r.size() <= prev);
            prev = r.size();
        }
    }

    #[test]
    fn coverage_verifier_accepts_what_full_verifier_accepts(
        g in arb_connected_graph(25),
        k in 1u32..4,
    ) {
        // verify() implies verify_coverage(): the latter is a strict
        // relaxation.
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        prop_assert!(c.verify(&g).is_ok());
        prop_assert!(c.verify_coverage(&g).is_ok());
    }
}
