//! The worker pool must be a pure throughput knob: every parallelized
//! path — label rebuilds and repairs (`run_all` / `update_all`), plan
//! compiles and deltas (`compile_tuned` / `apply_delta_tuned`), and
//! batched serving — has to reproduce the single-worker output
//! **bit-for-bit** for any worker count, on both label layouts.
//!
//! The determinism is structural (disjoint pre-partitioned slices,
//! per-worker scratch, chunk-order merges), so these proptests are the
//! contract's pin, not its proof: any reduction-order dependence that
//! sneaks into a sweep shows up here as a worker-count-sensitive
//! arena.

use adhoc_cluster::clustering::{self, MemberPolicy};
use adhoc_cluster::pipeline::{
    self, Algorithm, EvalScratch, EvaluationOutput, LabelMode, LabelStore, Parallelism,
};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::routing::{InterMode, QueryEngine, RoutePlan};
use adhoc_graph::delta::TopologyDelta;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::{Graph, NodeId};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The worker counts every path is pinned against (serial is the
/// reference arm): even split, ragged split, more workers than the
/// container has cores.
const WORKER_GRID: [usize; 3] = [2, 3, 8];

/// Canonical dump of a label store's arena: per head slot, the ball's
/// node sequence and each node's distance, in arena order. Two stores
/// with equal dumps answer every label query identically.
fn label_rows(labels: &LabelStore) -> Vec<(Vec<NodeId>, Vec<u32>)> {
    (0..labels.heads().len())
        .map(|slot| {
            let ball = labels.ball(slot).to_vec();
            let dists = ball.iter().map(|&v| labels.dist(slot, v)).collect();
            (ball, dists)
        })
        .collect()
}

fn assert_evals_equal(a: &EvaluationOutput, b: &EvaluationOutput, ctx: &str) {
    for alg in Algorithm::ALL {
        assert_eq!(
            &a.of(alg).selection,
            &b.of(alg).selection,
            "{ctx}: {alg} selection diverged"
        );
        assert_eq!(&a.of(alg).cds, &b.of(alg).cds, "{ctx}: {alg} CDS diverged");
    }
}

/// Deterministic sampled query pairs over `n` nodes.
fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                NodeId(rng.gen_range(0..n as u32)),
                NodeId(rng.gen_range(0..n as u32)),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// From-scratch builds: `run_all` label arenas, all five
    /// algorithms' outputs, the compiled plan (both inter-head
    /// layouts via Auto), and served batches are worker-count
    /// invariant.
    #[test]
    fn fresh_builds_are_worker_count_invariant(
        seed in 0u64..1_000_000,
        n in 40usize..=90,
        k in 1u32..=3,
        sparse in 0u32..2,
    ) {
        let mode = if sparse == 1 { LabelMode::Sparse } else { LabelMode::Dense };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
        let c = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);

        let mut serial = EvalScratch::with_tuning(mode, Parallelism::serial());
        let base = pipeline::run_all_with(&net.graph, &c, &mut serial);
        let base_rows = label_rows(serial.labels());
        let base_plan = RoutePlan::compile(
            &net.graph,
            &c,
            serial.labels(),
            base.ac_graph.links(),
        );
        let pairs = sample_pairs(n, 200, seed ^ 0x5EED);
        let base_batch = QueryEngine::new(&base_plan).route_many(&pairs);

        for w in WORKER_GRID {
            let par = Parallelism::new(w);
            let mut scratch = EvalScratch::with_tuning(mode, par);
            let eval = pipeline::run_all_with(&net.graph, &c, &mut scratch);
            assert_evals_equal(&eval, &base, &format!("{w} workers"));
            prop_assert_eq!(
                label_rows(scratch.labels()),
                base_rows.clone(),
                "{} workers: label arena diverged",
                w
            );
            let plan = RoutePlan::compile_tuned(
                &net.graph,
                &c,
                scratch.labels(),
                eval.ac_graph.links(),
                InterMode::Auto,
                par,
            );
            prop_assert_eq!(&plan, &base_plan, "{} workers: plan diverged", w);
            let batch = QueryEngine::with_workers(&plan, w).route_many(&pairs);
            prop_assert_eq!(&batch, &base_batch, "{} workers: served batch diverged", w);
        }
    }

    /// Incremental chains: `update_all` label repairs and
    /// `apply_delta_tuned` plan repairs over a shared random edge
    /// trajectory stay bit-identical to the serial arm at every step,
    /// including steps that change the head set (rebuild fallback).
    #[test]
    fn update_chains_are_worker_count_invariant(
        seed in 0u64..1_000_000,
        k in 1u32..=3,
        sparse in 0u32..2,
    ) {
        let mode = if sparse == 1 { LabelMode::Sparse } else { LabelMode::Dense };
        let n = 70usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);

        // One shared trajectory of edge deltas; every arm replays it.
        let mut g = net.graph.clone();
        let mut steps: Vec<(Graph, TopologyDelta)> = Vec::new();
        let mut extras: Vec<(NodeId, NodeId)> = Vec::new();
        for step in 0..6 {
            let mut delta = TopologyDelta::new();
            if step % 3 == 2 && !extras.is_empty() {
                for _ in 0..rng.gen_range(1..=extras.len()) {
                    let (a, b) = extras.swap_remove(rng.gen_range(0..extras.len()));
                    g.remove_edge(a, b);
                    delta.push_removed(a, b);
                }
            } else {
                for _ in 0..rng.gen_range(1..5) {
                    let a = NodeId(rng.gen_range(0..n as u32));
                    let b = NodeId(rng.gen_range(0..n as u32));
                    if a != b && !g.has_edge(a, b) {
                        g.add_edge(a, b);
                        delta.push_added(a, b);
                        extras.push(if a < b { (a, b) } else { (b, a) });
                    }
                }
            }
            delta.normalize();
            steps.push((g.clone(), delta));
        }

        // One arm = run_all, then per step: label dirty set, eval
        // repair, plan repair. Returns per-step label dumps and plans.
        let run_arm = |par: Parallelism| {
            let c0 = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let mut scratch = EvalScratch::with_tuning(mode, par);
            let mut prev = pipeline::run_all_with(&net.graph, &c0, &mut scratch);
            let mut plan = RoutePlan::compile_tuned(
                &net.graph,
                &c0,
                scratch.labels(),
                prev.ac_graph.links(),
                InterMode::Auto,
                par,
            );
            let mut rows = Vec::new();
            let mut plans = Vec::new();
            for (g, delta) in &steps {
                let c = clustering::cluster(g, k, &LowestId, MemberPolicy::IdBased);
                let dirty = scratch.labels().dirty_slots(delta);
                let (next, _) = pipeline::update_all(g, &c, delta, &prev, &mut scratch);
                plan.apply_delta_tuned(
                    g,
                    &c,
                    scratch.labels(),
                    delta,
                    &dirty,
                    next.ac_graph.links(),
                    par,
                );
                rows.push(label_rows(scratch.labels()));
                plans.push(plan.clone());
                prev = next;
            }
            (prev, rows, plans)
        };

        let (base_eval, base_rows, base_plans) = run_arm(Parallelism::serial());
        for w in WORKER_GRID {
            let (eval, rows, plans) = run_arm(Parallelism::new(w));
            assert_evals_equal(&eval, &base_eval, &format!("{w} workers, final step"));
            for (step, (r, b)) in rows.iter().zip(&base_rows).enumerate() {
                prop_assert_eq!(
                    r, b,
                    "{} workers: label arena diverged at step {}", w, step
                );
            }
            for (step, (p, b)) in plans.iter().zip(&base_plans).enumerate() {
                prop_assert_eq!(
                    p, b,
                    "{} workers: repaired plan diverged at step {}", w, step
                );
            }
        }
    }
}
