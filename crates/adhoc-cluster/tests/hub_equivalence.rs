//! The hub-label inter-head index must be invisible to serving: a plan
//! compiled with `InterMode::Hub` produces walks **node-for-node
//! identical** to the dense `h × h` table — same validity, endpoints,
//! hop counts, and checksums — for every algorithm's backbone, every
//! k ∈ 1..=4, and both label-store layouts. And the hub layout's
//! incremental repair must be a pure optimization of recompiling:
//! through `apply_delta` chains with weight changes and head-set
//! changes, the repaired plan stays **equal** (structural `Eq`, hub
//! arena included) to one compiled from scratch.

use adhoc_cluster::clustering::{self, MemberPolicy};
use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::routing::{
    fold_checksums, is_valid_walk, walk_checksum, walk_hops, InterMode, InterRepair, QueryEngine,
    RoutePlan, Workload,
};
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use adhoc_graph::labels::LabelMode;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hub-served walks ≡ dense-served walks on every algorithm's
    /// backbone, under both label-store layouts.
    #[test]
    fn hub_walks_match_dense_walks(
        seed in 0u64..1_000_000,
        n in 40usize..=90,
        k in 1u32..=4,
        sparse_labels in 0usize..2,
    ) {
        let sparse_labels = sparse_labels == 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 7.0), &mut rng);
        let c = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        let mode = if sparse_labels { LabelMode::Sparse } else { LabelMode::Dense };
        let mut scratch = EvalScratch::with_mode(mode);
        let eval = pipeline::run_all_with(&net.graph, &c, &mut scratch);
        let mut dense_walk = Vec::new();
        let mut hub_walk = Vec::new();
        for alg in Algorithm::ALL {
            let links = eval.selected_links(alg);
            let dense = RoutePlan::compile_with(
                &net.graph, &c, scratch.labels(), links.iter().copied(), InterMode::Dense,
            );
            let hub = RoutePlan::compile_with(
                &net.graph, &c, scratch.labels(), links.iter().copied(), InterMode::Hub,
            );
            prop_assert_eq!(dense.inter_layout(), "dense");
            prop_assert_eq!(hub.inter_layout(), "hub");
            let (mut dense_sums, mut hub_sums) = (Vec::new(), Vec::new());
            for _ in 0..15 {
                let u = NodeId(rng.gen_range(0..n as u32));
                let v = NodeId(rng.gen_range(0..n as u32));
                let a = dense.route_into(u, v, &mut dense_walk);
                let b = hub.route_into(u, v, &mut hub_walk);
                prop_assert_eq!(a, b, "{} k={} {:?}->{:?}: routability diverged", alg, k, u, v);
                if let Some(hops) = a {
                    prop_assert_eq!(
                        &dense_walk, &hub_walk,
                        "{} k={} {:?}->{:?}: walks diverged", alg, k, u, v
                    );
                    prop_assert!(is_valid_walk(&net.graph, &hub_walk));
                    prop_assert_eq!(hub_walk[0], u);
                    prop_assert_eq!(*hub_walk.last().unwrap(), v);
                    prop_assert_eq!(hops, walk_hops(&hub_walk));
                    dense_sums.push(walk_checksum(&dense_walk));
                    hub_sums.push(walk_checksum(&hub_walk));
                }
            }
            prop_assert_eq!(
                fold_checksums(&dense_sums), fold_checksums(&hub_sums),
                "{} k={}: checksums diverged", alg, k
            );
        }
    }

    /// Hub repair ≡ recompile through delta chains that change link
    /// weights (edge churn re-realizes backbone paths) and the head
    /// set itself (periodic recluster → the rebuilt branch), with the
    /// dense plan maintained in lockstep as the serving reference.
    #[test]
    fn hub_delta_repair_matches_recompile(
        seed in 0u64..1_000_000,
        k in 1u32..=3,
        sparse_labels in 0usize..2,
    ) {
        let sparse_labels = sparse_labels == 1;
        let n = 80usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
        let mut g = net.graph.clone();
        let mut c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let mode = if sparse_labels { LabelMode::Sparse } else { LabelMode::Dense };
        let mut scratch = EvalScratch::with_mode(mode);
        let mut eval = pipeline::run_all_with(&g, &c, &mut scratch);
        let mut hub = RoutePlan::compile_with(
            &g, &c, scratch.labels(), eval.selected_links(Algorithm::AcLmst), InterMode::Hub,
        );
        let mut dense = RoutePlan::compile_with(
            &g, &c, scratch.labels(), eval.selected_links(Algorithm::AcLmst), InterMode::Dense,
        );
        let mut extras: Vec<(NodeId, NodeId)> = Vec::new();
        for step in 0..8 {
            let mut delta = adhoc_graph::delta::TopologyDelta::new();
            if step == 5 {
                // Head-set change: re-cluster the current graph from
                // scratch. Both plans must take the rebuilt branch and
                // still equal fresh compiles (layout policy preserved).
                c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
                eval = pipeline::run_all_with(&g, &c, &mut scratch);
            } else if step % 3 == 2 && !extras.is_empty() {
                for _ in 0..rng.gen_range(1..=extras.len()) {
                    let (a, b) = extras.swap_remove(rng.gen_range(0..extras.len()));
                    g.remove_edge(a, b);
                    delta.push_removed(a, b);
                }
            } else {
                for _ in 0..rng.gen_range(1..4) {
                    let a = NodeId(rng.gen_range(0..n as u32));
                    let b = NodeId(rng.gen_range(0..n as u32));
                    if a != b && !g.has_edge(a, b) {
                        g.add_edge(a, b);
                        delta.push_added(a, b);
                        extras.push(if a < b { (a, b) } else { (b, a) });
                    }
                }
            }
            let dirty: Vec<usize> = if step == 5 {
                (0..c.heads.len()).collect()
            } else {
                delta.normalize();
                let advance = pipeline::advance_labels(&g, &c, &delta, &mut scratch);
                let (next, _) = pipeline::update_all_after(&g, &c, &advance, &eval, &mut scratch);
                eval = next;
                match &advance {
                    pipeline::LabelAdvance::Incremental { dirty } => dirty.clone(),
                    pipeline::LabelAdvance::Rebuilt => (0..c.heads.len()).collect(),
                }
            };
            let hub_report = hub.apply_delta(
                &g, &c, scratch.labels(), &delta, &dirty,
                eval.selected_links(Algorithm::AcLmst),
            );
            let dense_report = dense.apply_delta(
                &g, &c, scratch.labels(), &delta, &dirty,
                eval.selected_links(Algorithm::AcLmst),
            );
            // The two layouts must agree on *whether* the backbone
            // changed, never on how they patched themselves.
            prop_assert_eq!(
                hub_report.next_recomputed, dense_report.next_recomputed,
                "step {}: layouts disagree on backbone change", step
            );
            if let InterRepair::HubRepaired { dirty_hubs } = hub_report.inter {
                prop_assert!(dirty_hubs <= c.heads.len());
            }
            let fresh_hub = RoutePlan::compile_with(
                &g, &c, scratch.labels(), eval.selected_links(Algorithm::AcLmst), InterMode::Hub,
            );
            let fresh_dense = RoutePlan::compile_with(
                &g, &c, scratch.labels(), eval.selected_links(Algorithm::AcLmst), InterMode::Dense,
            );
            prop_assert_eq!(&hub, &fresh_hub, "step {}: repaired hub plan diverged", step);
            prop_assert_eq!(&dense, &fresh_dense, "step {}: repaired dense plan diverged", step);
            // And the maintained pair still serves identical routes.
            let mut hw = Vec::new();
            let mut dw = Vec::new();
            for _ in 0..8 {
                let u = NodeId(rng.gen_range(0..n as u32));
                let v = NodeId(rng.gen_range(0..n as u32));
                let a = hub.route_into(u, v, &mut hw);
                let b = dense.route_into(u, v, &mut dw);
                prop_assert_eq!(a, b, "step {}: {:?}->{:?}", step, u, v);
                if a.is_some() {
                    prop_assert_eq!(&hw, &dw, "step {}: {:?}->{:?}", step, u, v);
                }
            }
        }
    }

    /// The batched query engine is layout-blind: identical hop vectors
    /// and checksums from hub- and dense-compiled plans on every mix.
    #[test]
    fn query_engine_is_layout_blind(
        seed in 0u64..1_000_000,
        mix_id in 0usize..3,
    ) {
        use adhoc_cluster::routing::Mix;
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(70, 100.0, 7.0), &mut rng);
        let c = clustering::cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::new();
        let eval = pipeline::run_all_with(&net.graph, &c, &mut scratch);
        let links = eval.selected_links(Algorithm::AcMesh);
        let dense = RoutePlan::compile_with(
            &net.graph, &c, scratch.labels(), links.iter().copied(), InterMode::Dense,
        );
        let hub = RoutePlan::compile_with(
            &net.graph, &c, scratch.labels(), links.iter().copied(), InterMode::Hub,
        );
        let mix = ["uniform", "hotspot", "local"][mix_id].parse::<Mix>().unwrap();
        let workload = Workload::new(&dense);
        let pairs = workload.generate(&dense, mix, 120, &mut rng);
        let served_dense = QueryEngine::new(&dense).route_many(&pairs);
        let served_hub = QueryEngine::with_workers(&hub, 4).route_many(&pairs);
        prop_assert_eq!(&served_dense, &served_hub);
    }
}
