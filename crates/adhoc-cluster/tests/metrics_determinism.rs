//! The observability layer must not become a second source of
//! nondeterminism: with metrics enabled, every count-type metric
//! (counters, non-`_ns` histograms, events) produced by a build +
//! repair chain has to be identical for any worker count, on both
//! label layouts. Only the `_ns` span timings may differ — and those
//! are excluded from [`MetricsSnapshot::deterministic_fingerprint`],
//! which is exactly the surface these proptests pin.
//!
//! The contract matters because bench records and CI smoke runs embed
//! the fingerprint: if a counter were incremented from a racy branch
//! (e.g. once per worker instead of once per sweep), records produced
//! on different machines would stop being comparable.

use adhoc_cluster::clustering::{self, MemberPolicy};
use adhoc_cluster::pipeline::{self, EvalScratch, LabelMode, Parallelism};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::routing::{InterMode, RoutePlan};
use adhoc_graph::delta::TopologyDelta;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::{Graph, NodeId};
use adhoc_graph::obs::{Metrics, MetricsSnapshot};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const WORKER_GRID: [usize; 4] = [1, 2, 3, 8];

/// Canonical comparison form: the deterministic fingerprint plus the
/// count-type rows themselves, so a divergence names the metric in the
/// assertion message instead of just flagging a hash mismatch.
fn count_rows(snap: &MetricsSnapshot) -> (u64, Vec<String>) {
    let mut rows: Vec<String> = snap
        .counters
        .iter()
        .map(|c| format!("counter {} = {}", c.name, c.value))
        .collect();
    rows.extend(
        snap.histograms
            .iter()
            .filter(|h| !h.name.ends_with("_ns"))
            .map(|h| format!("hist {} count={} sum={} max={}", h.name, h.count, h.sum, h.max)),
    );
    rows.extend(
        snap.events
            .iter()
            .map(|e| format!("event {} = {}", e.name, e.value)),
    );
    rows.push(format!("events_dropped = {}", snap.events_dropped));
    (snap.deterministic_fingerprint(), rows)
}

/// Shared delta trajectory: a few steps of random edge adds with an
/// occasional removal batch, normalized like the production feed.
fn trajectory(g0: &Graph, n: usize, seed: u64) -> Vec<(Graph, TopologyDelta)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = g0.clone();
    let mut extras: Vec<(NodeId, NodeId)> = Vec::new();
    let mut steps = Vec::new();
    for step in 0..5 {
        let mut delta = TopologyDelta::new();
        if step % 3 == 2 && !extras.is_empty() {
            for _ in 0..rng.gen_range(1..=extras.len()) {
                let (a, b) = extras.swap_remove(rng.gen_range(0..extras.len()));
                g.remove_edge(a, b);
                delta.push_removed(a, b);
            }
        } else {
            for _ in 0..rng.gen_range(1..5) {
                let a = NodeId(rng.gen_range(0..n as u32));
                let b = NodeId(rng.gen_range(0..n as u32));
                if a != b && !g.has_edge(a, b) {
                    g.add_edge(a, b);
                    delta.push_added(a, b);
                    extras.push(if a < b { (a, b) } else { (b, a) });
                }
            }
        }
        delta.normalize();
        steps.push((g.clone(), delta));
    }
    steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `run_all` → `update_all` → `apply_delta` chain: the metrics
    /// fingerprint (counters, count histograms, events) is identical
    /// at 1/2/3/8 workers on both label layouts.
    #[test]
    fn count_metrics_are_worker_count_invariant(
        seed in 0u64..1_000_000,
        k in 1u32..=3,
        sparse in 0u32..2,
    ) {
        let mode = if sparse == 1 { LabelMode::Sparse } else { LabelMode::Dense };
        let n = 60usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
        let steps = trajectory(&net.graph, n, seed ^ 0xD1FF);

        let run_arm = |par: Parallelism| {
            let metrics = Metrics::enabled();
            let c0 = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let mut scratch = EvalScratch::with_tuning(mode, par);
            scratch.set_metrics(metrics.clone());
            let mut prev = pipeline::run_all_with(&net.graph, &c0, &mut scratch);
            let mut plan = RoutePlan::compile_metered(
                &net.graph,
                &c0,
                scratch.labels(),
                prev.ac_graph.links(),
                InterMode::Auto,
                par,
                &metrics,
            );
            for (g, delta) in &steps {
                let c = clustering::cluster(g, k, &LowestId, MemberPolicy::IdBased);
                let dirty = scratch.labels().dirty_slots(delta);
                let (next, _) = pipeline::update_all(g, &c, delta, &prev, &mut scratch);
                plan.apply_delta_metered(
                    g,
                    &c,
                    scratch.labels(),
                    delta,
                    &dirty,
                    next.ac_graph.links(),
                    par,
                    &metrics,
                );
                prev = next;
            }
            count_rows(&metrics.snapshot())
        };

        let (base_fp, base_rows) = run_arm(Parallelism::serial());
        for w in WORKER_GRID {
            let (fp, rows) = run_arm(Parallelism::new(w));
            prop_assert_eq!(
                &rows, &base_rows,
                "{} workers ({:?}): count metrics diverged from serial arm", w, mode
            );
            prop_assert_eq!(
                fp, base_fp,
                "{} workers ({:?}): fingerprint diverged with equal rows \
                 (fingerprint covers something rows miss?)", w, mode
            );
        }
    }
}
