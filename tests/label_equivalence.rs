//! Dense ≡ sparse label-layout equivalence: the sparse ball-indexed
//! layout must be a pure memory optimization. For every product the
//! pipeline derives from head labels — the label rows and balls
//! themselves, the NC and AC neighbor relations, every canonical link
//! path, all five gateway selections and CDSs — a sparse-backed
//! [`EvalScratch`] has to reproduce the dense-backed one
//! **bit-for-bit**, both through cold `pipeline::run_all` builds and
//! through delta-driven `pipeline::update_all` sequences, for
//! k ∈ 1..=4.
//!
//! This is the contract that lets the auto heuristic switch layouts by
//! projected arena size without anything downstream noticing.

use khop::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Full bit-for-bit comparison of two evaluations plus the label
/// arenas they were derived from.
fn assert_equal_products(
    g: &Graph,
    dense: &EvaluationOutput,
    sparse: &EvaluationOutput,
    dense_scratch: &EvalScratch,
    sparse_scratch: &EvalScratch,
    ctx: &str,
) {
    let dl = dense_scratch.labels();
    let sl = sparse_scratch.labels();
    assert!(!dl.is_sparse() && sl.is_sparse(), "{ctx}: layout mixup");
    assert_eq!(dl.heads(), sl.heads(), "{ctx}: label heads");
    assert_eq!(dl.bound(), sl.bound(), "{ctx}: label bound");
    for slot in 0..dl.heads().len() {
        assert_eq!(dl.ball(slot), sl.ball(slot), "{ctx}: ball of slot {slot}");
        for v in g.nodes() {
            assert_eq!(
                dl.dist(slot, v),
                sl.dist(slot, v),
                "{ctx}: dist slot {slot} node {v:?}"
            );
        }
    }

    assert_eq!(
        dense.clustering.head_of, sparse.clustering.head_of,
        "{ctx}: clustering"
    );
    for (d, s, name) in [
        (&dense.nc_graph, &sparse.nc_graph, "nc"),
        (&dense.ac_graph, &sparse.ac_graph, "ac"),
    ] {
        assert_eq!(d.neighbor_sets, s.neighbor_sets, "{ctx}: {name} relation");
        assert_eq!(d.link_count(), s.link_count(), "{ctx}: {name} link count");
        for (dl, sl) in d.links().zip(s.links()) {
            assert_eq!((dl.a, dl.b), (sl.a, sl.b), "{ctx}: {name} pair");
            assert_eq!(dl.path, sl.path, "{ctx}: {name} path {:?}-{:?}", dl.a, dl.b);
        }
    }
    for alg in Algorithm::ALL {
        assert_eq!(
            dense.of(alg).selection,
            sparse.of(alg).selection,
            "{ctx}: {alg} selection"
        );
        assert_eq!(dense.of(alg).cds, sparse.of(alg).cds, "{ctx}: {alg} cds");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cold builds agree across layouts on random geometric graphs.
    #[test]
    fn run_all_dense_equals_sparse(
        seed in 0u64..1_000_000,
        n in 40usize..=110,
        k in 1u32..=4,
        denser in 0u32..2,
    ) {
        let d = if denser == 1 { 10.0 } else { 6.0 };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&gen::GeometricConfig::new(n, 100.0, d), &mut rng);
        let c = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        let mut ds = EvalScratch::with_mode(LabelMode::Dense);
        let mut ss = EvalScratch::with_mode(LabelMode::Sparse);
        let dense = pipeline::run_all_with(&net.graph, &c, &mut ds);
        let sparse = pipeline::run_all_with(&net.graph, &c, &mut ss);
        assert_equal_products(&net.graph, &dense, &sparse, &ds, &ss, "cold");
    }

    /// Chained deltas through `update_all` keep the layouts in
    /// lockstep — dirty sets, patched relations, copied paths, and the
    /// incremental-vs-rebuilt decision all included — and both equal a
    /// cold rebuild.
    #[test]
    fn update_all_chain_dense_equals_sparse(
        seed in 0u64..1_000_000,
        k in 1u32..=4,
    ) {
        let n = 80usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::geometric(&gen::GeometricConfig::new(n, 100.0, 6.0), &mut rng);
        let mut g = net.graph.clone();
        let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let mut ds = EvalScratch::with_mode(LabelMode::Dense);
        let mut ss = EvalScratch::with_mode(LabelMode::Sparse);
        let mut prev_d = pipeline::run_all_with(&g, &c, &mut ds);
        let mut prev_s = pipeline::run_all_with(&g, &c, &mut ss);
        let mut extras: Vec<(NodeId, NodeId)> = Vec::new();
        for step in 0..10 {
            let mut delta = TopologyDelta::new();
            if step % 3 == 2 && !extras.is_empty() {
                for _ in 0..rng.gen_range(1..=extras.len()) {
                    let (a, b) = extras.swap_remove(rng.gen_range(0..extras.len()));
                    g.remove_edge(a, b);
                    delta.push_removed(a, b);
                }
            } else {
                for _ in 0..rng.gen_range(1..5) {
                    let a = NodeId(rng.gen_range(0..n as u32));
                    let b = NodeId(rng.gen_range(0..n as u32));
                    if a != b && !g.has_edge(a, b) {
                        g.add_edge(a, b);
                        delta.push_added(a, b);
                        extras.push(if a < b { (a, b) } else { (b, a) });
                    }
                }
            }
            delta.normalize();
            let (next_d, rd) = pipeline::update_all(&g, &c, &delta, &prev_d, &mut ds);
            let (next_s, rs) = pipeline::update_all(&g, &c, &delta, &prev_s, &mut ss);
            prop_assert_eq!(rd, rs, "step {} reports diverged", step);
            assert_equal_products(&g, &next_d, &next_s, &ds, &ss, &format!("step {step}"));
            let cold = pipeline::run_all(&g, &c);
            for alg in Algorithm::ALL {
                prop_assert_eq!(
                    &next_s.of(alg).selection, &cold.of(alg).selection,
                    "step {} {} sparse != cold", step, alg
                );
            }
            prev_d = next_d;
            prev_s = next_s;
        }
    }
}
