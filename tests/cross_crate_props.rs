//! Cross-crate property tests: random connected topologies through the
//! full stack (centralized pipeline + distributed protocol +
//! maintenance), asserting the paper's theorems end to end.

use khop::prelude::*;
use proptest::prelude::*;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n)
        .prop_flat_map(|n| {
            let parents: Vec<_> = (1..n).map(|i| 0..i as u32).collect();
            let extra = (0..n as u32, 0..n as u32);
            (Just(n), parents, proptest::collection::vec(extra, 0..n))
        })
        .prop_map(|(n, parents, extra)| {
            let mut g = Graph::new(n);
            for (i, p) in parents.into_iter().enumerate() {
                g.add_edge(NodeId((i + 1) as u32), NodeId(p));
            }
            for (a, b) in extra {
                if a != b && !g.has_edge(NodeId(a), NodeId(b)) {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn theorem2_holds_end_to_end(g in arb_connected_graph(30), k in 1u32..4) {
        // Clusterheads + LMSTGA gateways + links among them form a
        // connected graph, via A-NCR (Theorem 2).
        let out = pipeline::run(&g, Algorithm::AcLmst, &PipelineConfig::new(k));
        prop_assert!(out.cds.verify(&g, k).is_ok());
    }

    #[test]
    fn distributed_equals_centralized_prop(g in arb_connected_graph(22), k in 1u32..3) {
        for alg in [Algorithm::AcMesh, Algorithm::AcLmst] {
            let run = run_protocol(&g, &ProtocolConfig::new(k, alg));
            let central = pipeline::run(&g, alg, &PipelineConfig::new(k));
            prop_assert_eq!(&run.heads, &central.clustering.heads);
            prop_assert_eq!(&run.gateways, &central.selection.gateways);
        }
    }

    #[test]
    fn departure_repair_always_validates(g in arb_connected_graph(25), k in 1u32..3, victim_raw in 0u32..25) {
        let victim = NodeId(victim_raw % g.len() as u32);
        let clustering = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let out = pipeline::run_on(&g, Algorithm::AcLmst, &clustering);
        let report = maintenance::handle_departure(
            &g, &clustering, &out.selection, Algorithm::AcLmst, victim,
        );
        let mut residual = g.clone();
        residual.isolate(victim);
        prop_assert!(maintenance::repaired_structures_valid(&residual, &report, &[victim]));
    }

    #[test]
    fn gmst_is_lower_bound_on_links(g in arb_connected_graph(30), k in 1u32..4) {
        let clustering = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let gmst = pipeline::run_on(&g, Algorithm::GMst, &clustering);
        for alg in [Algorithm::NcMesh, Algorithm::AcMesh, Algorithm::NcLmst, Algorithm::AcLmst] {
            let out = pipeline::run_on(&g, alg, &clustering);
            // Any connected gateway structure needs at least a
            // spanning tree's worth of virtual links.
            prop_assert!(out.selection.links_used.len() >= gmst.selection.links_used.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The distributed protocol and the centralized pipeline agree on
    /// quasi-UDG topologies too — the wire protocol never relied on
    /// disk geometry.
    #[test]
    fn distributed_equals_centralized_on_quasi_udg(seed in 0u64..500, k in 1u32..3) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::quasi_geometric(
            &gen::GeometricConfig::new(30, 100.0, 6.0),
            1.5,
            0.5,
            &mut rng,
        );
        let run = run_protocol(&net.graph, &ProtocolConfig::new(k, Algorithm::AcLmst));
        let central = pipeline::run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(k));
        prop_assert_eq!(&run.heads, &central.clustering.heads);
        prop_assert_eq!(&run.gateways, &central.selection.gateways);
    }

    /// The exact solver's optimum is invariant under the member policy
    /// used by the heuristics (it never sees the clustering), and both
    /// exact solvers are deterministic.
    #[test]
    fn exact_solver_is_deterministic(g in arb_connected_graph(12), k in 1u32..3) {
        use khop::prelude::exact;
        let a = exact::min_khop_cds(&g, k, &ExactConfig::default());
        let b = exact::min_khop_cds(&g, k, &ExactConfig::default());
        prop_assert_eq!(a.set, b.set);
        prop_assert_eq!(a.explored, b.explored);
    }
}
