//! Workspace wiring smoke test.
//!
//! Guards the build-system bootstrap itself: the root `tests/` directory
//! is registered against the `khop` umbrella crate by explicit
//! `[[test]]` manifest entries, and every algorithm the paper compares
//! must be runnable end-to-end through the umbrella's prelude. If the
//! manifest wiring or the crate dependency DAG breaks, this is the
//! first test to fail.

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_algorithms_run_on_a_seeded_geometric_graph() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 7.0), &mut rng);
    assert!(
        connectivity::is_connected(&net.graph),
        "seeded geometric graph should be connected at this density"
    );

    for k in [1u32, 2] {
        for alg in Algorithm::ALL {
            let out = pipeline::run(&net.graph, alg, &PipelineConfig::new(k));
            out.cds
                .verify(&net.graph, k)
                .unwrap_or_else(|e| panic!("{alg:?} produced an invalid CDS at k={k}: {e}"));
            assert!(
                !out.clustering.heads.is_empty(),
                "{alg:?} elected no clusterheads at k={k}"
            );
        }
    }
}

#[test]
fn umbrella_reexports_expose_all_layers() {
    // One symbol per layer: graph substrate, clustering, simulator.
    let g = gen::grid(3, 3);
    assert_eq!(g.len(), 9);
    let c = clustering::cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
    c.verify(&g).unwrap();
    let run = run_protocol(&g, &ProtocolConfig::new(1, Algorithm::AcLmst));
    assert!(run.stats.total() > 0, "protocol should exchange messages");
}
