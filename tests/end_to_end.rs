//! Cross-crate end-to-end tests through the `khop` umbrella: from
//! network generation to verified CDS, distributed execution,
//! maintenance, and energy rotation chained together.

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn full_stack_pipeline_on_paper_workload() {
    let mut rng = StdRng::seed_from_u64(12345);
    for (n, d) in [(50usize, 6.0), (100, 6.0), (100, 10.0), (200, 6.0)] {
        let net = gen::geometric(&gen::GeometricConfig::new(n, 100.0, d), &mut rng);
        for k in 1..=4u32 {
            let cfg = PipelineConfig::new(k);
            let clustering = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            clustering.verify(&net.graph).unwrap();
            for alg in Algorithm::ALL {
                let out = pipeline::run_on(&net.graph, alg, &clustering);
                out.cds
                    .verify(&net.graph, k)
                    .unwrap_or_else(|e| panic!("N={n} D={d} k={k} {alg}: {e}"));
            }
            let _ = cfg;
        }
    }
}

#[test]
fn distributed_then_repair_chain() {
    // Run the distributed protocol, then kill a node and repair with
    // the §3.3 rules; repaired structures must validate.
    let mut rng = StdRng::seed_from_u64(777);
    let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
    let k = 2;
    let run = run_protocol(&net.graph, &ProtocolConfig::new(k, Algorithm::AcLmst));

    // Reassemble centralized-style structures from the distributed
    // outcome (they are identical by the equivalence tests).
    let clustering = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
    let out = pipeline::run_on(&net.graph, Algorithm::AcLmst, &clustering);
    assert_eq!(run.gateways, out.selection.gateways);

    for _ in 0..10 {
        let victim = NodeId(rng.gen_range(0..net.graph.len() as u32));
        let report = maintenance::handle_departure(
            &net.graph,
            &clustering,
            &out.selection,
            Algorithm::AcLmst,
            victim,
        );
        let mut residual = net.graph.clone();
        residual.isolate(victim);
        assert!(
            maintenance::repaired_structures_valid(&residual, &report, &[victim]),
            "repair after {victim:?} ({:?}) invalid",
            report.role
        );
    }
}

#[test]
fn bystander_repairs_are_free_gateway_repairs_are_local() {
    let mut rng = StdRng::seed_from_u64(31);
    let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 8.0), &mut rng);
    let k = 2;
    let clustering = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
    let out = pipeline::run_on(&net.graph, Algorithm::AcLmst, &clustering);

    let mut saw_bystander = false;
    for uid in 0..net.graph.len() as u32 {
        let u = NodeId(uid);
        let role = maintenance::classify(&clustering, &out.selection, u);
        if role != Role::Bystander {
            continue;
        }
        let report = maintenance::handle_departure(
            &net.graph,
            &clustering,
            &out.selection,
            Algorithm::AcLmst,
            u,
        );
        if !report.escalated {
            saw_bystander = true;
            assert!(report.touched.is_empty(), "paper rule: nothing to do");
            assert_eq!(report.selection.gateways, out.selection.gateways);
        }
    }
    assert!(saw_bystander, "workload should contain plain members");
}

#[test]
fn rotation_vs_static_on_random_network() {
    let mut rng = StdRng::seed_from_u64(2);
    let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 8.0), &mut rng);
    let model = EnergyModel {
        initial: 500,
        head_cost: 50,
        gateway_cost: 30,
        member_cost: 10,
    };
    let epochs = 60;
    let rot = energy::run_lifetime(
        &net.graph,
        2,
        Algorithm::AcLmst,
        &model,
        RotationPolicy::ResidualEnergy,
        epochs,
    );
    let stat = energy::run_lifetime(
        &net.graph,
        2,
        Algorithm::AcLmst,
        &model,
        RotationPolicy::StaticLowestId,
        epochs,
    );
    let rd = rot.first_death_epoch.unwrap_or(epochs + 1);
    let sd = stat.first_death_epoch.unwrap_or(epochs + 1);
    assert!(
        rd >= sd,
        "rotation must not shorten time-to-first-death (rot {rd} vs static {sd})"
    );
    assert!(rot.head_changes > stat.head_changes);
}

#[test]
fn mobility_epochs_keep_structures_buildable() {
    let mut rng = StdRng::seed_from_u64(1234);
    let base = gen::geometric(&gen::GeometricConfig::new(70, 100.0, 9.0), &mut rng);
    let mut mobile = MobileNetwork::new(
        base.positions.clone(),
        base.range,
        WaypointConfig::default_for_side(100.0),
        &mut rng,
    );
    let mut built = 0;
    for _ in 0..15 {
        mobile.step(1.0, &mut rng);
        if !connectivity::is_connected(mobile.graph()) {
            continue;
        }
        let out = pipeline::run(mobile.graph(), Algorithm::AcLmst, &PipelineConfig::new(2));
        out.cds.verify(mobile.graph(), 2).unwrap();
        built += 1;
    }
    assert!(built > 0, "some epochs must yield a connected network");
}

#[test]
fn umbrella_reexports_are_usable() {
    // Compile-level test that the prelude exposes the whole stack.
    let g = gen::path(5);
    let key = PriorityKey::new(0, NodeId(1));
    assert_eq!(key.id, NodeId(1));
    let c = clustering::cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
    let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
    assert!(vg.link_count() > 0);
    let sel = gateway::lmstga(&vg, &c);
    let cds = Cds::assemble(&c, &sel);
    assert!(matches!(cds.verify(&g, 1), Ok(())));
    let hd = HighestDegree::from_graph(&g);
    let _ = hd.key(NodeId(0));
    let rt = RandomTimer::sample(5, &mut StdRng::seed_from_u64(0));
    let _ = rt.key(NodeId(0));
    let re = ResidualEnergy::new(vec![1; 5]);
    let _ = re.key(NodeId(0));
}

#[test]
fn sequential_departure_chain_stays_valid() {
    // Failure injection: five successive departures, each repaired
    // from the previous repair's structures (not from scratch). The
    // repaired clustering/CDS must stay valid for the shrinking
    // network as long as it remains connected.
    let mut rng = StdRng::seed_from_u64(909);
    let net = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 9.0), &mut rng);
    let k = 2;
    let mut graph = net.graph.clone();
    let mut clustering = clustering::cluster(&graph, k, &LowestId, MemberPolicy::IdBased);
    let mut selection = pipeline::run_on(&graph, Algorithm::AcLmst, &clustering).selection;
    let mut gone: Vec<NodeId> = Vec::new();

    for round in 0..5 {
        // Pick an alive victim deterministically.
        let victim = graph
            .nodes()
            .find(|v| !gone.contains(v) && (v.0 as usize + round).is_multiple_of(3))
            .expect("alive victim");
        let report = maintenance::handle_departure(
            &graph,
            &clustering,
            &selection,
            Algorithm::AcLmst,
            victim,
        );
        graph.isolate(victim);
        gone.push(victim);
        let mut residual = graph.clone();
        let _ = &mut residual;
        assert!(
            maintenance::repaired_structures_valid(&graph, &report, &gone),
            "round {round}: repair after {victim:?} invalid"
        );
        clustering = report.clustering;
        selection = report.selection;
        // The stored clustering still covers all previously departed
        // nodes with the GONE sentinel; make sure none resurfaced.
        for g in &gone[..gone.len() - 1] {
            assert!(
                !clustering.heads.contains(g),
                "departed {g:?} is a head again"
            );
        }
        if !report.residual_connected {
            break; // network split: chain ends, best-effort structures
        }
    }
}

#[test]
fn departure_then_arrival_round_trip() {
    // A node leaves and the same radio footprint later switches on
    // again: repair + arrival must restore a valid structure.
    let mut rng = StdRng::seed_from_u64(404);
    let net = gen::geometric(&gen::GeometricConfig::new(70, 100.0, 9.0), &mut rng);
    let k = 2;
    let clustering = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
    let selection = pipeline::run_on(&net.graph, Algorithm::AcLmst, &clustering).selection;
    let victim = NodeId(33);
    let dep = maintenance::handle_departure(
        &net.graph,
        &clustering,
        &selection,
        Algorithm::AcLmst,
        victim,
    );
    if !dep.residual_connected {
        return; // unlucky articulation point; covered by other tests
    }
    // The node switches back on with its original links.
    let (outcome, arr) =
        maintenance::handle_arrival(&net.graph, &dep.clustering, Algorithm::AcLmst, victim);
    match outcome {
        maintenance::ArrivalOutcome::Joined { dist, .. } => assert!(dist <= k),
        maintenance::ArrivalOutcome::BecameHead => {}
    }
    assert!(arr.cds.verify(&net.graph, k).is_ok());
}

#[test]
fn pipeline_is_robust_to_quasi_udg_topologies() {
    // The paper's theorems never use geometry — only graph
    // connectivity — so the whole pipeline must keep working when the
    // radio model stops being a perfect disk (quasi-UDG with a gray
    // zone between r and 1.5r).
    let mut rng = StdRng::seed_from_u64(606);
    for k in 1..=3u32 {
        let net = gen::quasi_geometric(
            &gen::GeometricConfig::new(100, 100.0, 8.0),
            1.5,
            0.5,
            &mut rng,
        );
        let clustering = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        clustering.verify(&net.graph).unwrap();
        for alg in Algorithm::ALL {
            let out = pipeline::run_on(&net.graph, alg, &clustering);
            out.cds
                .verify(&net.graph, k)
                .unwrap_or_else(|e| panic!("{alg} on quasi-UDG, k={k}: {e}"));
        }
    }
}

#[test]
fn movement_policy_matches_scratch_rebuild_quality() {
    // After any sequence of repairs, the maintained CDS must stay
    // within a constant factor of what a from-scratch rebuild would
    // produce (here: 2x, empirically loose) — maintenance must not let
    // quality decay without bound.
    let mut rng = StdRng::seed_from_u64(707);
    let base = gen::geometric(&gen::GeometricConfig::new(90, 100.0, 10.0), &mut rng);
    let wp = mobility::WaypointConfig {
        side: 100.0,
        min_speed: 0.2,
        max_speed: 1.0,
        pause: 1.0,
    };
    let model = mobility::RandomWaypoint::new(90, wp, &mut rng);
    let mut mobile = MobileNetwork::with_model(base.positions.clone(), base.range, model);
    let mut maintained = MaintainedCds::build(
        mobile.graph(),
        MovementConfig::strict(2, Algorithm::AcLmst),
    );
    for _ in 0..25 {
        mobile.step(1.0, &mut rng);
        maintained.step(mobile.graph());
        if !connectivity::is_connected(mobile.graph()) {
            continue;
        }
        let scratch = pipeline::run(mobile.graph(), Algorithm::AcLmst, &PipelineConfig::new(2));
        assert!(
            maintained.cds.size() <= 2 * scratch.cds.size() + 2,
            "maintained CDS {} vs scratch {}",
            maintained.cds.size(),
            scratch.cds.size()
        );
    }
}

#[test]
fn prelude_exposes_the_whole_stack() {
    // Compile-time + smoke check that every major subsystem is
    // reachable through `khop::prelude` alone (the documented entry
    // point): substrate, pipeline, exact solver, protocol, MAC,
    // mobility, movement policy, maintenance, energy, routing.
    let mut rng = StdRng::seed_from_u64(9000);
    let net = gen::geometric(&gen::GeometricConfig::new(40, 100.0, 8.0), &mut rng);
    let k = 1;

    let out = pipeline::run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(k));
    out.cds.verify(&net.graph, k).unwrap();

    let opt = exact::min_khop_cds(&net.graph, k, &ExactConfig::default());
    assert!(opt.optimal && opt.size() <= out.cds.size());

    let dist = run_protocol(&net.graph, &ProtocolConfig::new(k, Algorithm::AcLmst));
    assert_eq!(dist.heads, out.clustering.heads);

    let r = mac::simulate_with_mac(
        &net.graph,
        &out.clustering,
        &out.cds,
        NodeId(0),
        BroadcastStrategy::Backbone,
        &MacConfig::default(),
        &mut rng,
    );
    assert!(r.delivered > 0);

    let mut m = MaintainedCds::build(&net.graph, MovementConfig::strict(k, Algorithm::AcLmst));
    assert_eq!(m.step(&net.graph).level, RepairLevel::None);

    let p = KhopDegree::from_graph(&net.graph, k);
    let c = clustering::cluster(&net.graph, k, &p, MemberPolicy::IdBased);
    c.verify(&net.graph).unwrap();

    let router = ClusterRouter::build(&net.graph, &out.clustering);
    let path = router
        .route(&net.graph, NodeId(0), NodeId(39))
        .expect("connected backbone");
    assert_eq!(path.first(), Some(&NodeId(0)));
    assert_eq!(path.last(), Some(&NodeId(39)));

    // The compiled serving plan answers the same query with the same
    // walk, without touching the graph at query time.
    let mut scratch = EvalScratch::new();
    let eval = pipeline::run_all_with(&net.graph, &out.clustering, &mut scratch);
    let plan = RoutePlan::compile(
        &net.graph,
        &out.clustering,
        scratch.labels(),
        eval.ac_graph.links(),
    );
    assert_eq!(plan.route(NodeId(0), NodeId(39)).as_deref(), Some(&path[..]));
}
