//! Guards on the committed canonical bench records in `results/`.
//!
//! The four `BENCH_*.json` files are the repo's perf trajectory; CI and
//! reviewers compare against them. Two classes of regression are cheap
//! to commit by accident and expensive to discover later:
//!
//! 1. overwriting a canonical full-mode record with the output of a
//!    `--quick` smoke run (tiny grids, useless numbers), and
//! 2. dropping the `metrics` section (or committing one produced by a
//!    binary whose instrumentation went silent), losing the per-phase
//!    reconcile timings and query latency percentiles the records are
//!    now expected to carry.
//!
//! This test fails the build in either case. It reads the records from
//! the working tree, so it also validates freshly regenerated records
//! before they are committed.

use serde_json::Value;
use std::path::{Path, PathBuf};

fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is `crates/khop`; the records live at the
    // repository root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn load(name: &str) -> Value {
    let path = results_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e:?}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {name}: {e:?}"))
}

const CANONICAL: &[(&str, &str)] = &[
    ("BENCH_pipeline.json", "khop-perf-baseline/v2"),
    ("BENCH_churn.json", "khop-churn/v1"),
    ("BENCH_routing.json", "khop-routing/v1"),
    ("BENCH_resilience.json", "khop-resilience/v1"),
];

/// Histograms every record's probe section must have populated.
const REQUIRED_HISTOGRAMS: &[&str] = &[
    "reconcile.observe_ns",
    "reconcile.repair_ns",
    "reconcile.publish_ns",
    "query.latency_ns",
    "query.hops",
];

fn check_metrics_section(name: &str, doc: &Value) {
    let metrics = &doc["metrics"];
    assert!(
        metrics.as_object().is_some(),
        "{name}: missing `metrics` section (regenerate with the current bench binaries)"
    );
    assert!(
        metrics["fingerprint"].as_str().is_some_and(|f| f.len() == 16),
        "{name}: metrics.fingerprint missing or malformed"
    );
    let histograms = metrics["snapshot"]["histograms"]
        .as_array()
        .unwrap_or_else(|| panic!("{name}: metrics.snapshot.histograms missing"));
    for required in REQUIRED_HISTOGRAMS {
        let h = histograms
            .iter()
            .find(|h| h["name"].as_str() == Some(required))
            .unwrap_or_else(|| panic!("{name}: metrics section lacks histogram {required}"));
        assert!(
            h["count"].as_u64().is_some_and(|c| c > 0),
            "{name}: histogram {required} is empty"
        );
        for pct in ["p50", "p90", "p99"] {
            assert!(
                h[pct].as_u64().is_some(),
                "{name}: histogram {required} lacks {pct}"
            );
        }
    }
    let counters = metrics["snapshot"]["counters"]
        .as_array()
        .unwrap_or_else(|| panic!("{name}: metrics.snapshot.counters missing"));
    for required in ["reconcile.count", "plan.published", "query.count"] {
        assert!(
            counters.iter().any(|c| c["name"].as_str() == Some(required)),
            "{name}: metrics section lacks counter {required}"
        );
    }
}

#[test]
fn canonical_records_are_full_mode_with_metrics() {
    for &(name, schema) in CANONICAL {
        let doc = load(name);
        assert_eq!(
            doc["schema"].as_str(),
            Some(schema),
            "{name}: unexpected schema"
        );
        assert_eq!(
            doc["mode"].as_str(),
            Some("full"),
            "{name}: canonical records must be full-mode; a --quick run \
             was committed over it (quick runs write BENCH_*_quick.json)"
        );
        assert!(
            doc["grid"].as_object().is_some() || doc["grid"].as_array().is_some(),
            "{name}: missing `grid` stamp"
        );
        check_metrics_section(name, &doc);
    }
}

#[test]
fn pipeline_record_carries_metrics_overhead_guard() {
    let doc = load("BENCH_pipeline.json");
    let overhead = &doc["metrics_overhead"];
    assert!(
        overhead.as_object().is_some(),
        "BENCH_pipeline.json: metrics_overhead missing or null — the \
         largest grid cell's metered arm did not run"
    );
    let ratio = overhead["overhead_ratio"]
        .as_f64()
        .expect("metrics_overhead.overhead_ratio");
    assert!(
        ratio < 1.03,
        "BENCH_pipeline.json: committed metrics-on overhead {ratio:.4}x \
         exceeds the 3% budget"
    );
}

/// Quick smoke artifacts may exist locally but must self-identify, so a
/// rename/copy onto a canonical path is caught by the test above.
#[test]
fn quick_records_self_identify() {
    let dir = results_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    for entry in entries.flatten() {
        let file = entry.file_name();
        let Some(name) = file.to_str() else { continue };
        if name.starts_with("BENCH_") && name.ends_with("_quick.json") {
            let doc = load(name);
            assert_eq!(
                doc["mode"].as_str(),
                Some("quick"),
                "{name}: quick-named record must carry mode=\"quick\""
            );
        }
    }
}
