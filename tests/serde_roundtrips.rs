//! Serialization round-trips for every serde-enabled public type.
//!
//! The bench harness persists results as JSON (consumed when
//! regenerating EXPERIMENTS.md), and graphs/structures are meant to be
//! checkpointable — so the wire format is part of the public contract.

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_network() -> (Graph, Clustering, Cds) {
    let mut rng = StdRng::seed_from_u64(11);
    let net = gen::geometric(&gen::GeometricConfig::new(40, 100.0, 6.0), &mut rng);
    let out = pipeline::run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(2));
    (net.graph, out.clustering, out.cds)
}

#[test]
fn graph_round_trips_through_json() {
    let (g, _, _) = sample_network();
    let json = serde_json::to_string(&g).unwrap();
    let back: Graph = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), g.len());
    assert_eq!(back.edge_count(), g.edge_count());
    assert_eq!(
        back.edges().collect::<Vec<_>>(),
        g.edges().collect::<Vec<_>>()
    );
    back.check_invariants().unwrap();
}

#[test]
fn clustering_round_trips_and_still_verifies() {
    let (g, c, _) = sample_network();
    let json = serde_json::to_string(&c).unwrap();
    let back: Clustering = serde_json::from_str(&json).unwrap();
    assert_eq!(back.heads, c.heads);
    assert_eq!(back.k, c.k);
    back.verify(&g).unwrap();
}

#[test]
fn cds_round_trips_and_still_verifies() {
    let (g, _, cds) = sample_network();
    let json = serde_json::to_string(&cds).unwrap();
    let back: Cds = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cds);
    back.verify(&g, 2).unwrap();
}

#[test]
fn algorithm_and_config_round_trip() {
    for alg in Algorithm::ALL {
        let json = serde_json::to_string(&alg).unwrap();
        let back: Algorithm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, alg);
    }
    let cfg = PipelineConfig::new(3);
    let back: PipelineConfig = serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
    assert_eq!(back.k, 3);
}

#[test]
fn node_id_serializes_as_plain_number() {
    // Compactness contract: a NodeId is a bare integer on the wire,
    // not a struct — result files stay small and diffable.
    let json = serde_json::to_string(&NodeId(7)).unwrap();
    assert_eq!(json, "7");
    let back: NodeId = serde_json::from_str("7").unwrap();
    assert_eq!(back, NodeId(7));
}

#[test]
fn protocol_stats_round_trip() {
    let g = gen::grid(4, 4);
    let run = run_protocol(&g, &ProtocolConfig::new(1, Algorithm::AcLmst));
    let json = serde_json::to_string(&run.stats).unwrap();
    let back: Stats = serde_json::from_str(&json).unwrap();
    assert_eq!(back.total(), run.stats.total());
    assert_eq!(back.makespan, run.stats.makespan);
    for p in Phase::ALL {
        assert_eq!(back.phase_total(p), run.stats.phase_total(p));
    }
}

#[test]
fn corrupted_graph_json_is_rejected_not_panicking() {
    let bad = r#"{"adj": [[1]], "edges": 1}"#; // asymmetric adjacency
    // Deserialization itself succeeds (serde sees valid shape)...
    let g: Result<Graph, _> = serde_json::from_str(bad);
    if let Ok(g) = g {
        // ...but the invariant checker must flag it.
        assert!(g.check_invariants().is_err());
    }
}
