//! End-to-end tests of the `khop` command-line interface: each
//! subcommand is spawned as a real process and its output contract
//! checked.

use std::process::Command;

fn khop(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_khop"))
        .args(args)
        .output()
        .expect("spawn khop")
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn gen_then_run_round_trip() {
    let dir = std::env::temp_dir().join(format!("khop-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("net.txt");
    let net_s = net.to_str().unwrap();

    let out = khop(&["gen", "--n", "60", "--d", "6", "--seed", "5", "--out", net_s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("60 nodes"));
    assert!(net.exists());

    let out = khop(&["run", "--input", net_s, "--k", "2", "--alg", "ac-lmst"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("AC-LMST on 60 nodes"), "got: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_json_is_parseable_and_consistent() {
    let out = khop(&[
        "run", "--n", "80", "--d", "8", "--seed", "3", "--k", "1", "--alg", "g-mst", "--json",
    ]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["algorithm"], "G-MST");
    assert_eq!(v["nodes"], 80);
    let heads = v["clusterheads"].as_array().unwrap().len();
    let gws = v["gateways"].as_array().unwrap().len();
    assert_eq!(v["cds_size"].as_u64().unwrap() as usize, heads + gws);
}

#[test]
fn dist_reports_protocol_phases() {
    let out = khop(&["dist", "--n", "50", "--d", "8", "--seed", "2", "--k", "1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("distributed AC-LMST"));
    assert!(text.contains("total transmissions"));
    assert!(text.contains("clustering"));
}

#[test]
fn exact_reports_ratios() {
    let out = khop(&["exact", "--n", "18", "--d", "5", "--seed", "4", "--k", "1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("proven optimal"), "got: {text}");
    for alg in ["NC-Mesh", "AC-Mesh", "NC-LMST", "AC-LMST", "G-MST"] {
        assert!(text.contains(alg));
    }
}

#[test]
fn exact_refuses_large_networks() {
    let out = khop(&["exact", "--n", "120", "--k", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("40 or fewer"));
}

#[test]
fn maintain_summarizes_savings() {
    let out = khop(&["maintain", "--n", "60", "--k", "2", "--steps", "8", "--seed", "6"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("rebuild-every-step"));
}

#[test]
fn mac_prints_both_strategies() {
    let out = khop(&["mac", "--n", "60", "--d", "8", "--seed", "7", "--cw", "4"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("flood"));
    assert!(text.contains("backbone"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = khop(&["frobnicate"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn dist_rejects_gmst() {
    let out = khop(&["dist", "--n", "50", "--alg", "g-mst"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("centralized"));
}
