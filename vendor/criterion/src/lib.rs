//! Minimal, API-compatible shim for the subset of the `criterion`
//! benchmarking crate (0.5 API) used by this workspace.
//!
//! The build environment has no network access, so this vendored crate
//! supplies `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Instead of criterion's full statistical machinery it runs each
//! benchmark for a warm-up pass plus `sample_size` timed iterations and
//! reports mean wall-clock time per iteration — enough to compare
//! algorithm variants and catch order-of-magnitude regressions, with
//! the same source-level API so the real criterion can be dropped back
//! in by editing one line of the workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
    /// `--test`-mode flag: run each benchmark body once and skip timing.
    test_mode: bool,
    /// Substring filters from `cargo bench <filter>`; empty = run all.
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Criterion {
            sample_size: 20,
            test_mode: args.iter().any(|a| a == "--test"),
            // Positional (non-flag) args are benchmark name filters,
            // matched as substrings like real criterion.
            filters: args
                .iter()
                .filter(|a| !a.starts_with('-'))
                .cloned()
                .collect(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.test_mode, &self.filters, |b| {
            f(b)
        });
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &id.full_name(None),
            self.sample_size,
            self.test_mode,
            &self.filters,
            |b| f(b, input),
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_one(
            &id.full_name(Some(&self.name)),
            self.sample_size,
            self.test_mode,
            &self.parent.filters,
            |b| f(b),
        );
        self
    }

    /// Runs a benchmark in the group parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &id.full_name(Some(&self.name)),
            self.sample_size,
            self.test_mode,
            &self.parent.filters,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally with a parameter value.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` at parameter `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(f) = &self.function {
            parts.push(f);
        }
        if let Some(p) = &self.parameter {
            parts.push(p);
        }
        parts.join("/")
    }
}

/// Conversion used by `BenchmarkGroup::bench_function`, which accepts
/// either a plain name or a full [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it `sample_size` times (once in
    /// `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Warm-up pass, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    test_mode: bool,
    filters: &[String],
    mut f: F,
) {
    if !filters.is_empty() && !filters.iter().any(|pat| name.contains(pat.as_str())) {
        return;
    }
    let mut b = Bencher {
        samples,
        test_mode,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if test_mode {
        println!("test {name} ... ok");
    } else {
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!("{name:<60} {per_iter:>12.2?}/iter  ({} iters)", b.iters);
    }
}

/// Declares a function that runs a list of benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(2);
        c.filters.clear(); // the test harness's own args are not filters
        let mut count = 0u32;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count >= 1);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("alg", 42);
        assert_eq!(id.full_name(Some("grp")), "grp/alg/42");
        let id = BenchmarkId::from_parameter(7);
        assert_eq!(id.full_name(Some("grp")), "grp/7");
    }
}
