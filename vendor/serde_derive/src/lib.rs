//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). The parser handles exactly the
//! shapes this workspace derives on:
//!
//! - structs with named fields        -> JSON objects
//! - newtype (1-field tuple) structs  -> transparent
//! - multi-field tuple structs        -> JSON arrays
//! - enums with only unit variants    -> JSON strings
//!
//! Anything else (generics, data-carrying enum variants) produces a
//! `compile_error!` pointing here, so unsupported shapes fail loudly at
//! build time instead of misbehaving on the wire.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, ...)` — number of unnamed fields.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { A, B }` — unit variant names in declaration order.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", format!("serde shim derive: {msg}"))
        .parse()
        .unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "`{name}` is generic; the shim derive only supports non-generic types"
        ));
    }

    match (kind, tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            Ok(Shape::NamedStruct { name, fields })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_tuple_fields(g.stream());
            Ok(Shape::TupleStruct { name, arity })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Shape::UnitStruct { name })
        }
        ("struct", None) => Ok(Shape::UnitStruct { name }),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = parse_unit_variants(&name, g.stream())?;
            Ok(Shape::UnitEnum { name, variants })
        }
        (_, other) => Err(format!("unsupported item body for `{name}`: {other:?}")),
    }
}

/// Advances past `#[...]` attributes (incl. doc comments) and
/// `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas (commas inside nested
/// groups or angle brackets don't count).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth: i32 = 0;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(t);
    }
    if out.last().map(Vec::is_empty).unwrap_or(false) {
        out.pop(); // trailing comma
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for seg in split_top_level_commas(stream) {
        let mut j = 0;
        skip_attrs_and_vis(&seg, &mut j);
        match seg.get(j) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for seg in split_top_level_commas(stream) {
        let mut j = 0;
        skip_attrs_and_vis(&seg, &mut j);
        let variant = match seg.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        j += 1;
        match seg.get(j) {
            None => variants.push(variant),
            // `= discriminant` is fine; payload groups are not.
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => variants.push(variant),
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{enum_name}::{variant}` carries data; the shim derive only \
                     supports unit variants"
                ));
            }
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),",
                        f
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{elems}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {:?},", v))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__get_field(obj, {:?})?)?,",
                        f
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object for struct {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let a = v.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array for tuple struct {name}\"))?;\n\
                         if a.len() != {arity} {{\n\
                             return Err(::serde::DeError::expected(\"array of length {arity}\"));\n\
                         }}\n\
                         Ok({name}({elems}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some({:?}) => Ok({name}::{v}),", v))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             _ => Err(::serde::DeError::expected(\"variant of {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
