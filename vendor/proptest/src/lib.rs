//! Minimal, API-compatible shim for the subset of the `proptest`
//! property-testing crate used by this workspace.
//!
//! The build environment has no network access, so this vendored crate
//! implements the pieces the test suites rely on: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, integer/float range
//! strategies, tuple and `Vec<Strategy>` composition, [`Just`],
//! [`collection::vec`], [`ProptestConfig`], and the `proptest!`,
//! `prop_assert!`, and `prop_assert_eq!` macros.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test seed (derived from the test name) and
//! failing cases are *not* shrunk — the panic message simply reports
//! the case number. That trades debugging convenience for zero
//! dependencies while keeping the same source-level API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

/// Deterministic RNG used to drive generation.
pub mod test_runner {
    use rand::SeedableRng;

    /// Wrapper around the workspace's deterministic generator.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub(crate) rand::rngs::StdRng);

    impl TestRng {
        /// Builds a generator whose seed is derived from `name`, so a
        /// given test always replays the same inputs.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and
            // platforms, unique enough per test.
            let mut h: u64 = 0xCBF29CE484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001B3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(h))
        }
    }
}

use test_runner::TestRng;

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// A `Vec` of strategies acts as a strategy for a `Vec` of values,
/// generating one value per element (mirrors proptest).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Half-open length range for generated collections; built from
    /// `usize` ranges or an exact `usize` (mirrors proptest's
    /// `SizeRange` conversions, which is what lets bare integer
    /// literals like `vec(elem, 1..30)` infer `usize`).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi_exclusive, "empty collection size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a property holds, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts two expressions are equal under the property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts two expressions are unequal under the property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// is run against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let run = || {
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                        $body
                    };
                    if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest: property `{}` failed on case {}/{} (deterministic seed; rerun reproduces it)",
                            stringify!($name), __case + 1, __config.cases,
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..200 {
            let v = (1u32..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let xs = crate::collection::vec(0u32..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("compose");
        let s = (1usize..4)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..9, n..n + 1)))
            .prop_map(|(n, xs)| (n, xs.len()));
        for _ in 0..100 {
            let (n, len) = s.generate(&mut rng);
            assert_eq!(n, len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, ys in crate::collection::vec(0u64..5, 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(ys.len() < 4);
        }
    }
}
