//! Minimal, deterministic, API-compatible shim for the subset of the
//! `rand` crate (0.8 API) used by this workspace.
//!
//! The build environment has no network access, so instead of the real
//! crates.io `rand` this vendored crate provides `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods the simulator
//! and generators call (`gen`, `gen_range`, `gen_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high
//! quality, fast, and fully deterministic, which is all the stack
//! needs (reproducible topologies and backoff draws, not
//! cryptographic randomness). Streams differ from the real `StdRng`
//! (ChaCha12), which is fine: nothing in the workspace depends on the
//! exact values, only on seed-determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: 64 uniformly distributed bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS entropy. The shim has no entropy
    /// source, so this derives a seed from the current time.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256++, SplitMix64-seeded).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four lanes.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let g: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "samples should spread across [0,1)");
    }
}
