//! Minimal, API-compatible shim for the subset of `serde` used by this
//! workspace.
//!
//! The build environment has no network access, so instead of the real
//! crates.io `serde` this vendored crate provides the `Serialize` and
//! `Deserialize` traits plus `#[derive(Serialize, Deserialize)]`
//! macros (from the sibling `serde_derive` shim). Rather than serde's
//! zero-copy visitor architecture, both traits go through an owned
//! [`Value`] tree — exactly the data model JSON needs, which is the
//! only wire format the workspace uses (via the vendored
//! `serde_json`).
//!
//! Wire-format compatibility with real serde is preserved for the
//! shapes the workspace serializes: named structs become objects,
//! newtype structs are transparent, unit enum variants become strings,
//! maps with string-like keys become objects, and sequences become
//! arrays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Owned JSON-shaped data model that serialization passes through.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (stored when the value doesn't fit unsigned).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Renders compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Renders two-space-indented JSON text.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => write_json_float(out, *f),
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_newline_indent(out, indent, depth + 1);
                    item.write_json(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    push_newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_newline_indent(out, indent, depth + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    push_newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn push_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
}

fn write_json_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // `1.0f64` displays as "1"; keep it a float on the wire the way
    // serde_json does ("1.0") so round-trips preserve the number type.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Prints compact JSON, mirroring `serde_json::Value`'s `Display`.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

fn num_eq_i128(v: &Value, n: i128) -> bool {
    match v {
        Value::Int(i) => *i as i128 == n,
        Value::UInt(u) => *u as i128 == n,
        Value::Float(f) => *f == n as f64,
        _ => false,
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                num_eq_i128(self, *other as i128)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                num_eq_i128(other, *self as i128)
            }
        }
    )*};
}
impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Error produced when a [`Value`] doesn't match the requested type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X" type-mismatch error.
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }

    /// "missing field X" error for struct deserialization.
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the serde data model. Implement via
/// `#[derive(Serialize)]`.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the serde data model. Implement via
/// `#[derive(Deserialize)]`.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field during derived deserialization.
#[doc(hidden)]
pub fn __get_field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(name))
}

// ---------------------------------------------------------------------
// Serialize / Deserialize impls for std types.
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                // Mirror serde_json: non-finite numbers become null.
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                // Accept null for the non-finite round-trip.
                if v.is_null() {
                    return Ok(<$t>::NAN);
                }
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::expected(stringify!($t)))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("tuple array"))?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected array of length {expected}, got {}",
                        a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

fn map_to_value<'a, K, V, I>(iter: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Object(
        iter.map(|(k, v)| {
            let key = match k.to_value() {
                Value::String(s) => s,
                // Mirror serde_json's integer-keyed maps, which
                // stringify the key.
                Value::UInt(u) => u.to_string(),
                Value::Int(i) => i.to_string(),
                other => panic!("map key must serialize to a string, got {other:?}"),
            };
            (key, v.to_value())
        })
        .collect(),
    )
}

fn map_from_value<K, V, M>(v: &Value) -> Result<M, DeError>
where
    K: Deserialize,
    V: Deserialize,
    M: FromIterator<(K, V)>,
{
    v.as_object()
        .ok_or_else(|| DeError::expected("object"))?
        .iter()
        .map(|(k, val)| {
            let key = K::from_value(&Value::String(k.clone()))
                .or_else(|_| K::from_value(&parse_numeric_key(k)))?;
            Ok((key, V::from_value(val)?))
        })
        .collect()
}

/// Integer-keyed maps round-trip through stringified keys.
fn parse_numeric_key(k: &str) -> Value {
    if let Ok(u) = k.parse::<u64>() {
        Value::UInt(u)
    } else if let Ok(i) = k.parse::<i64>() {
        Value::Int(i)
    } else {
        Value::String(k.to_string())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impls_round_trip() {
        let v = vec![(1u32, 2u64), (3, 4)].to_value();
        let back: Vec<(u32, u64)> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, vec![(1, 2), (3, 4)]);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        let back: BTreeMap<String, f64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let back: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn type_mismatch_is_an_error_not_a_panic() {
        let r: Result<u32, _> = Deserialize::from_value(&Value::String("x".into()));
        assert!(r.is_err());
        let r: Result<Vec<u32>, _> = Deserialize::from_value(&Value::UInt(3));
        assert!(r.is_err());
        let r: Result<u8, _> = Deserialize::from_value(&Value::UInt(300));
        assert!(r.is_err(), "out-of-range integer must be rejected");
    }

    #[test]
    fn value_comparisons_match_json_semantics() {
        assert_eq!(Value::UInt(80), 80i32);
        assert_eq!(Value::String("G-MST".into()), "G-MST");
        assert!(Value::Null.get("x").is_none());
        let obj = Value::Object(vec![("k".into(), Value::UInt(2))]);
        assert_eq!(obj["k"], 2u32);
        assert!(obj["missing"].is_null());
    }
}
