//! Minimal, API-compatible shim for the subset of `serde_json` used by
//! this workspace: `to_string`, `to_string_pretty`, `from_str`,
//! `to_value`, the [`json!`] macro, and [`Value`] (re-exported from the
//! vendored `serde`, which owns the data model).
//!
//! The writer emits standard JSON (strings escaped per RFC 8259,
//! non-finite floats as `null`); the reader is a strict recursive
//! descent parser with `\uXXXX` (incl. surrogate pair) support.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error type for serialization and parsing failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string())
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

/// Builds a [`Value`] from JSON-like syntax: object literals with
/// string-literal keys, array literals, `null`, or any `Serialize`
/// expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a \"quoted\"\nline".into())),
            ("n".into(), Value::UInt(42)),
            ("neg".into(), Value::Int(-7)),
            ("pi".into(), Value::Float(3.25)),
            ("ok".into(), Value::Bool(true)),
            ("arr".into(), Value::Array(vec![Value::Null, Value::UInt(1)])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_stay_floats_on_the_wire() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: Value = from_str("1.0").unwrap();
        assert_eq!(back, Value::Float(1.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"\\q\"", "1 2"] {
            assert!(from_str::<Value>(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v: Value = from_str(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::String("A😀".into()));
    }

    #[test]
    fn json_macro_builds_objects() {
        let heads = vec![1u32, 2, 3];
        let v = json!({
            "algorithm": "AC-LMST",
            "k": 2u32,
            "heads": heads,
        });
        assert_eq!(v["algorithm"], "AC-LMST");
        assert_eq!(v["k"], 2);
        assert_eq!(v["heads"].as_array().unwrap().len(), 3);
        assert!(matches!(json!(null), Value::Null));
    }
}
